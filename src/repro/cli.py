"""Command-line interface.

::

    repro experiments                 # list experiment ids and titles
    repro run E3 [--fast] [-j 4]      # run one experiment, print its table
    repro run all [--fast]            # run every experiment
    repro run E4 --trace out.jsonl    # also write per-run event traces
    repro report out.jsonl            # message-flow/freshness summary of a trace
    repro trace-stats reality         # statistics of a calibrated profile
    repro analyze-trace contacts.txt  # stats/centrality of a real trace file
    repro simulate --scheme hdr ...   # one ad-hoc simulation run
    repro predict --scheme hdr ...    # closed-form freshness predictions
    repro serve --source replay ...   # live service: stream contacts + HTTP API
    repro loadgen --rate 2000 ...     # fire Zipf queries at the live service
    repro bench [-o BENCH.json]       # engine/sweep/scheme/trace-gen benchmarks
    repro profile [--scheme hdr]      # cProfile one reference simulation
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Sequence

import numpy as np


def _cmd_experiments(_args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS

    for exp_id, runner in EXPERIMENTS.items():
        doc = (sys.modules[runner.__module__].__doc__ or "").strip().splitlines()[0]
        print(f"{exp_id}  {doc}")
    return 0


def _resolve_jobs_or_complain(jobs) -> Optional[int]:
    """Resolve the worker count, printing a clean error instead of a
    traceback for an invalid ``--jobs`` or ``$REPRO_JOBS`` value."""
    from repro.experiments.parallel import resolve_jobs

    try:
        return resolve_jobs(jobs)
    except ValueError as exc:
        print(f"error: {exc}")
        return None


def _load_fault_plan_or_complain(path):
    """Load a ``--faults`` TOML plan, printing errors without tracebacks."""
    from repro.faults.plan import load_plan

    try:
        return load_plan(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}")
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.experiments import EXPERIMENTS, Settings

    if _resolve_jobs_or_complain(args.jobs) is None:
        return 2
    settings = Settings.fast() if args.fast else Settings()
    ids = list(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment.upper()]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; known: {list(EXPERIMENTS)}")
        return 2
    fault_plan = None
    if args.faults:
        fault_plan = _load_fault_plan_or_complain(args.faults)
        if fault_plan is None:
            return 2
    checkpointing = (args.resume or args.checkpoint is not None
                     or args.job_timeout is not None
                     or args.max_retries is not None)
    if checkpointing:
        from repro.experiments.reliability import RetryPolicy

        try:
            policy = RetryPolicy(
                max_retries=2 if args.max_retries is None else args.max_retries,
                job_timeout=args.job_timeout,
            )
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
    if args.trace:
        from repro.experiments.runner import trace_output

        context = trace_output(args.trace)
    else:
        context = nullcontext()
    if fault_plan is not None:
        from repro.experiments.runner import fault_injection

        faults_context = fault_injection(fault_plan)
    else:
        faults_context = nullcontext()
    from repro.experiments.reliability import SweepIncomplete

    status = 0
    with context as sink, faults_context:
        for exp_id in ids:
            if checkpointing:
                from repro.experiments.checkpoint import SweepJournal
                from repro.experiments.reliability import resilient_execution

                directory = Path(args.checkpoint or ".repro-checkpoint") / exp_id
                journal = SweepJournal(directory, resume=args.resume)
                exp_context = resilient_execution(policy, journal)
            else:
                exp_context = nullcontext()
            try:
                with exp_context:
                    result = EXPERIMENTS[exp_id](settings, jobs=args.jobs)
            except SweepIncomplete as exc:
                print(f"error: {exp_id} incomplete: {exc}")
                status = 1
                continue
            print(result)
            if args.export:
                from repro.analysis.export import export_result

                written = export_result(result, args.export)
                for path in written:
                    print(f"exported {path}")
            if checkpointing:
                print(f"checkpoint journal: {journal.journal_path} "
                      "(re-run with --resume to skip completed jobs)")
            print()
    if sink is not None and sink.output is not None:
        print(f"trace written to {sink.output} "
              f"({len(sink.entries)} file(s); inspect with 'repro report')")
    return status


def _load_scenario_or_complain(name_or_path: str, directory: str):
    """Resolve a scenario by registry name or file path, with clean errors."""
    from repro.scenarios import ScenarioError, load_registry, load_scenario

    if name_or_path.endswith(".toml") or "/" in name_or_path:
        try:
            return load_scenario(name_or_path)
        except (OSError, ScenarioError) as exc:
            print(f"error: {exc}")
            return None
    try:
        registry = load_registry(directory)
    except (OSError, ScenarioError) as exc:
        print(f"error: {exc}")
        return None
    scenario = registry.get(name_or_path)
    if scenario is None:
        known = ", ".join(sorted(registry)) or "(none)"
        print(f"error: unknown scenario {name_or_path!r} in {directory}/ "
              f"(known: {known})")
        return None
    return scenario


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioError, load_registry

    if args.action == "list":
        try:
            registry = load_registry(args.dir)
        except (OSError, ScenarioError) as exc:
            print(f"error: {exc}")
            return 2
        if not registry:
            print(f"no scenarios found under {args.dir}/")
            return 0
        from repro.scenarios import grid_size

        width = max(len(name) for name in registry)
        for name, scenario in sorted(registry.items()):
            points = grid_size(scenario)
            suffix = f"  [{points} grid points]" if points > 1 else ""
            print(f"{name:<{width}}  {scenario.title}{suffix}")
        return 0

    if args.action == "validate":
        from repro.scenarios import expand_grid, load_scenario
        from repro.scenarios.compose import sweep_point_from_doc

        targets = args.names or sorted(
            str(p) for p in Path(args.dir).glob("*.toml")
        )
        if not targets:
            print(f"no scenarios found under {args.dir}/")
            return 2
        status = 0
        for target in targets:
            if target.endswith(".toml") or "/" in target:
                try:
                    scenario = load_scenario(target)
                except (OSError, ScenarioError) as exc:
                    print(f"error: {exc}")
                    status = 2
                    continue
            else:
                scenario = _load_scenario_or_complain(target, args.dir)
                if scenario is None:
                    status = 2
                    continue
            try:
                points = expand_grid(scenario)
                for point in points:
                    sweep_point_from_doc(point.doc)
            except (ScenarioError, ValueError) as exc:
                print(f"error: {exc}")
                status = 2
                continue
            plural = "s" if len(points) != 1 else ""
            print(f"ok: {scenario.path} ({scenario.name}, "
                  f"{len(points)} grid point{plural})")
        return status

    scenario = _load_scenario_or_complain(args.name, args.dir)
    if scenario is None:
        return 2

    if args.action == "show":
        from repro.scenarios import expand_grid

        print(f"name:        {scenario.name}")
        if scenario.title:
            print(f"title:       {scenario.title}")
        print(f"file:        {scenario.path}")
        if scenario.description:
            print(f"description: {scenario.description}")
        print(f"schemes:     {', '.join(scenario.schemes)}")
        points = expand_grid(scenario)
        print(f"grid points: {len(points)}")
        for point in points:
            if point.overrides:
                overrides = ", ".join(f"{k}={v}" for k, v in point.overrides)
                print(f"  {point.index}: {point.label}  ({overrides})")
            else:
                print(f"  {point.index}: {point.label}")
        return 0

    # action == "run"
    from contextlib import nullcontext

    from repro.analysis.aggregate import summarize
    from repro.experiments.parallel import run_sweep
    from repro.experiments.reliability import SweepIncomplete
    from repro.scenarios import ScenarioError as _ScenarioError
    from repro.scenarios import compose_scenario

    if _resolve_jobs_or_complain(args.jobs) is None:
        return 2
    try:
        grid_points, sweep_points = compose_scenario(scenario)
    except (_ScenarioError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    checkpointing = (args.resume or args.checkpoint is not None
                     or args.job_timeout is not None
                     or args.max_retries is not None)
    if checkpointing:
        from repro.experiments.checkpoint import SweepJournal
        from repro.experiments.reliability import (
            RetryPolicy,
            resilient_execution,
        )

        try:
            policy = RetryPolicy(
                max_retries=2 if args.max_retries is None else args.max_retries,
                job_timeout=args.job_timeout,
            )
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        directory = Path(args.checkpoint or ".repro-checkpoint") / scenario.name
        journal = SweepJournal(directory, resume=args.resume)
        exp_context = resilient_execution(policy, journal)
    else:
        exp_context = nullcontext()
    if args.trace:
        from repro.experiments.runner import trace_output

        context = trace_output(args.trace)
    else:
        context = nullcontext()
    title = scenario.title or scenario.name
    print(f"== scenario {scenario.name}: {title} ==")
    with context as sink:
        try:
            with exp_context:
                merged = run_sweep(sweep_points, jobs=args.jobs)
        except SweepIncomplete as exc:
            print(f"error: {scenario.name} incomplete: {exc}")
            return 1
        for grid_point, results in zip(grid_points, merged):
            print(f"\n[{grid_point.index}] {grid_point.label}")
            for scheme in sweep_points[grid_point.index].schemes:
                runs = results.get(scheme, [])
                if not runs:
                    print(f"  {scheme:<10} (no completed runs)")
                    continue
                freshness = summarize([m.freshness for m in runs])
                line = (f"  {scheme:<10} freshness {freshness.mean:.3f} "
                        f"+/- {freshness.ci95:.3f}")
                if sweep_points[grid_point.index].with_queries:
                    answered = summarize(
                        [m.query_answer_ratio for m in runs]
                    )
                    line += f"  answered {answered.mean:.3f}"
                line += f"  ({len(runs)} seed(s))"
                print(line)
    if checkpointing:
        print(f"\ncheckpoint journal: {journal.journal_path} "
              "(re-run with --resume to skip completed jobs)")
    if sink is not None and sink.output is not None:
        print(f"trace written to {sink.output} "
              f"({len(sink.entries)} file(s); inspect with 'repro report')")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.export import load_trace, write_chrome_trace
    from repro.obs.report import format_trace_report

    try:
        records = load_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    print(format_trace_report(records, title=args.path))
    if args.chrome:
        count = write_chrome_trace(records, args.chrome)
        print(f"\nwrote {args.chrome} ({count} events; open in "
              "chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.mobility.calibration import get_profile, list_profiles

    if args.profile not in list_profiles():
        print(f"unknown profile {args.profile!r}; known: {list_profiles()}")
        return 2
    profile = get_profile(args.profile)
    trace = profile.generate(np.random.default_rng(args.seed))
    row = {"trace": profile.name, **trace.stats().as_row()}
    print(format_table([row], precision=2))
    return 0


def _cmd_analyze_trace(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.contacts.centrality import contact_centrality, rank_nodes
    from repro.contacts.intercontact import (
        aggregate_intercontact_samples,
        fit_exponential,
        ks_distance,
    )
    from repro.contacts.rates import mle_rates
    from repro.mobility.loaders import load_one_report, load_pairwise

    if args.format == "one":
        trace = load_one_report(args.path)
    else:
        trace = load_pairwise(args.path, time_scale=args.time_scale)
    print(format_table([{"trace": trace.name, **trace.stats().as_row()}],
                       precision=2))
    samples = aggregate_intercontact_samples(trace, normalise=True,
                                             min_gaps_per_pair=3)
    if len(samples):
        rate = fit_exponential(samples)
        print(f"\npair-normalised inter-contact gaps: {len(samples)} samples, "
              f"KS distance to fitted exponential {ks_distance(samples, rate):.3f}")
    rates = mle_rates(trace)
    scores = contact_centrality(rates, window=args.window_hours * 3600.0)
    top = rank_nodes(scores, top=args.top)
    print(f"\ntop {args.top} nodes by contact centrality "
          f"({args.window_hours:.0f} h window): "
          + ", ".join(f"{n}({scores[n]:.1f})" for n in top))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.config import HOUR, Settings
    from repro.experiments.runner import run_once, make_trace

    settings = Settings(
        profile=args.profile,
        duration=args.days * 86400.0,
        num_caching_nodes=args.caching_nodes,
        refresh_interval=args.refresh_hours * HOUR,
        freshness_requirement=args.p_req,
        seeds=(args.seed,),
    )
    fault_plan = None
    if args.faults:
        fault_plan = _load_fault_plan_or_complain(args.faults)
        if fault_plan is None:
            return 2
    trace = make_trace(settings, args.seed)
    with_queries = args.backend == "object"
    try:
        metrics = run_once(trace, args.scheme, settings, seed=args.seed,
                           with_queries=with_queries, trace_path=args.trace,
                           fault_plan=fault_plan, backend=args.backend)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(f"backend           : {args.backend}")
    print(f"scheme            : {metrics.scheme}")
    print(f"freshness         : {metrics.freshness:.4f}")
    print(f"validity          : {metrics.validity:.4f}")
    print(f"on-time refreshes : {metrics.on_time_ratio:.4f}")
    print(f"refresh messages  : {metrics.messages:.0f}")
    print(f"msgs per update   : {metrics.messages_per_update:.2f}")
    if with_queries:
        print(f"queries issued    : {metrics.queries_issued}")
        print(f"query answered    : {metrics.query_answer_ratio:.4f}")
        print(f"query fresh ratio : {metrics.query_fresh_ratio:.4f}")
    if args.trace:
        print(f"trace written to  : {args.trace}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_json, export_rows
    from repro.analysis.tables import format_table
    from repro.contacts.intercontact import (
        aggregate_intercontact_samples,
        fit_exponential,
        ks_distance,
    )
    from repro.core.scheme import SCHEMES, build_simulation, scheme_variant
    from repro.experiments.config import HOUR, Settings
    from repro.experiments.runner import choose_sources, make_catalog, make_trace
    from repro.theory import FreshnessModel, agreement_band, compare

    if args.scheme not in SCHEMES:
        print(f"unknown scheme {args.scheme!r}; known: {sorted(SCHEMES)}")
        return 2
    settings = Settings.fast() if args.fast else Settings()
    if args.refresh_hours is not None:
        settings = settings.with_(refresh_interval=args.refresh_hours * HOUR)
    config = SCHEMES[args.scheme]
    if args.max_relays is not None:
        config = scheme_variant(args.scheme, max_relays=args.max_relays)
    trace = make_trace(settings, args.seed)
    catalog = make_catalog(settings, choose_sources(trace, settings))
    runtime = build_simulation(
        trace,
        catalog,
        scheme=config,
        num_caching_nodes=settings.num_caching_nodes,
        seed=args.seed,
        refresh_jitter=settings.refresh_jitter,
    )
    try:
        model = FreshnessModel.from_runtime(
            runtime, query_rate=settings.query_rate
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    prediction = model.predict()

    samples = aggregate_intercontact_samples(trace, normalise=True,
                                             min_gaps_per_pair=3)
    ks = ks_distance(samples, fit_exponential(samples)) if len(samples) else 0.0
    tolerance = agreement_band(ks)

    measured = None
    if args.simulate:
        from repro.analysis.metrics import freshness_summary, refresh_outcomes

        runtime.install_freshness_probe(
            interval=settings.probe_interval, until=settings.duration
        )
        runtime.run(until=settings.duration)
        fresh = freshness_summary(
            runtime,
            t0=settings.warmup_fraction * settings.duration,
            t1=settings.duration,
        )
        refresh = refresh_outcomes(
            runtime.update_log,
            runtime.history,
            catalog,
            runtime.caching_nodes,
            horizon=settings.duration,
            messages=runtime.refresh_overhead(),
        )
        measured = {
            "freshness": fresh.freshness,
            "validity": fresh.validity,
            "on_time_ratio": refresh.on_time_ratio,
        }
    report = compare(prediction, measured, tolerance=tolerance)
    title = (f"{args.scheme} on {settings.profile}, "
             f"R={settings.refresh_interval / HOUR:g}h, seed {args.seed}")
    print(report.format(title=title))
    print(f"\ntrace KS deviation from exponential: {ks:.3f} "
          f"(tolerance = band(KS), see docs/MODEL.md)")
    print()
    print(format_table(prediction.level_rows(), precision=3,
                       title="per-depth delivery probability "
                       "(fractions of the refresh interval)"))
    expected = prediction.expected_queries(settings.duration)
    print(f"\nexpected queries over {settings.duration / 86400.0:g} days: "
          f"{expected:,.0f} ({prediction.num_requesters} requesters)")
    if args.json:
        payload = {"scheme": args.scheme, "profile": settings.profile,
                   "seed": args.seed, "ks": ks, "tolerance": tolerance,
                   **prediction.as_dict()}
        print(f"wrote {export_json(args.json, payload)}")
    if args.export:
        print(f"wrote {export_rows(args.export, prediction.as_dict()['nodes'])}")
    if args.trace:
        from repro.obs.export import write_jsonl

        count = write_jsonl(report.records(time=runtime.sim.now), args.trace)
        print(f"wrote {args.trace} ({count} model.predict records; "
              "inspect with 'repro report')")
    return 0


def _cmd_serve_supervised(args: argparse.Namespace) -> int:
    """Supervise a child ``repro serve`` (same flags minus
    ``--supervised``, plus ``--resume``) that restarts from checkpoints."""
    from pathlib import Path

    from repro.service.supervisor import (
        RESTART_LOG,
        CrashLoop,
        RestartPolicy,
        Supervisor,
    )

    if not args.checkpoint:
        print("error: --supervised needs --checkpoint DIR "
              "(restarts resume from checkpoints)")
        return 2
    child_args = [a for a in sys.argv[1:] if a != "--supervised"]
    if "--resume" not in child_args:
        child_args.append("--resume")
    command = [sys.executable, "-m", "repro.cli", *child_args]
    policy = RestartPolicy(max_restarts=args.max_restarts,
                           min_healthy_s=args.min_healthy)
    supervisor = Supervisor(
        command, policy=policy,
        log_path=Path(args.checkpoint) / RESTART_LOG,
    )
    print(f"supervising: {' '.join(child_args)} "
          f"(max {policy.max_restarts} consecutive crashes)")
    try:
        code = supervisor.run()
    except CrashLoop as exc:
        print(f"error: {exc}")
        return 1
    if supervisor.restarts:
        print(f"supervisor: {supervisor.restarts} restart(s), "
              f"log in {supervisor.log_path}")
    return code


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import math
    import os
    import signal
    from pathlib import Path

    from repro.experiments.config import DAY, Settings
    from repro.service import FileTailSource, HttpApi, ReplaySource, SocketSource
    from repro.service.durability import (
        SPEC_FILE,
        BuildSpec,
        restore_service_async,
    )
    from repro.service.runtime import service_from_settings

    if args.supervised:
        return _cmd_serve_supervised(args)

    dilation = float(args.dilation)
    if dilation <= 0:
        print("error: --dilation must be positive (use 'inf' for unpaced)")
        return 2
    if args.source == "tail" and not args.file:
        print("error: --source tail needs --file CONTACTS.jsonl")
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume needs --checkpoint DIR")
        return 2
    fault_plan = None
    if args.faults:
        fault_plan = _load_fault_plan_or_complain(args.faults)
        if fault_plan is None:
            return 2
        if not fault_plan.has_stream_faults():
            print(f"note: {args.faults} has no [stream] faults; "
                  "the ingest feed runs clean")
            fault_plan = None
    bus = None
    if args.trace:
        from repro.obs.bus import EventBus

        bus = EventBus()
    settings = Settings.fast().with_(
        profile=args.profile,
        duration=args.days * DAY,
        seeds=(args.seed,),
    )
    ckpt_dir = Path(args.checkpoint) if args.checkpoint else None
    resume = (
        args.resume
        and ckpt_dir is not None
        and (ckpt_dir / SPEC_FILE).exists()
    )
    if args.resume and not resume:
        print(f"note: no checkpoint in {ckpt_dir}; starting fresh")

    service = None
    trace = None
    resume_cursor = None
    if not resume:
        service, trace = service_from_settings(
            settings,
            seed=args.seed,
            scheme=args.scheme,
            contact_queue=args.contact_queue,
            query_queue=args.query_queue,
            serve_rate=args.serve_rate,
            bus=bus,
        )
        if ckpt_dir is not None:
            spec = BuildSpec.from_settings(
                settings,
                seed=args.seed,
                scheme=args.scheme,
                contact_queue=args.contact_queue,
                query_queue=args.query_queue,
                serve_rate=args.serve_rate,
            )
            service.enable_checkpointing(
                ckpt_dir, spec=spec, interval_s=args.checkpoint_interval
            )

    def _arm_crash_hook() -> None:
        # test hook: REPRO_SERVE_CRASH_AT=N kills the process the first
        # time the checkpointer commits >= N journal records (a flag
        # file makes it once per checkpoint dir, so a supervised
        # restart does not crash again)
        crash_at = os.environ.get("REPRO_SERVE_CRASH_AT")
        if not crash_at or service.checkpointer is None:
            return
        threshold = int(crash_at)
        flag = ckpt_dir / "crashed.flag"
        checkpointer = service.checkpointer
        original = checkpointer.note_commit

        def crashing_note(commit: int) -> None:
            original(commit)
            if commit >= threshold and not flag.exists():
                flag.write_text("crashed\n", encoding="utf-8")
                os._exit(17)

        checkpointer.note_commit = crashing_note

    async def _serve() -> None:
        nonlocal service, trace, resume_cursor
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        api = None

        async def _start_api(svc) -> None:
            nonlocal api
            if args.http != "off":
                host, _, port = args.http.partition(":")
                api = HttpApi(svc, host or "127.0.0.1", int(port or 0))
                await api.start()
                print(f"serving queries on {api.url} "
                      "(/healthz /status /metrics /freshness /query?item=N)")

        if resume:
            restored = await restore_service_async(
                ckpt_dir,
                interval_s=(args.checkpoint_interval
                            if args.checkpoint_interval is not None
                            else 5.0),
                on_built=_start_api,
                bus=bus,
            )
            service, trace = restored.service, restored.trace
            resume_cursor = restored.cursor
            print(f"resumed from {ckpt_dir}: {restored.records} journal "
                  f"records, watermark {service.watermark:,.0f}s"
                  f"{' (digest verified)' if restored.verified else ''}")
        else:
            await _start_api(service)
        _arm_crash_hook()
        cursor = resume_cursor or 0
        if args.source == "replay":
            from repro.service.events import ContactEvent

            events = ContactEvent.from_contacts(trace)
            pace_from = (
                events[cursor].start if 0 < cursor < len(events) else 0.0
            )
            source = ReplaySource(events, dilation=dilation, stop=stop,
                                  start_at=min(cursor, len(events)),
                                  pace_from=pace_from)
        elif args.source == "tail":
            source = FileTailSource(args.file, stop=stop,
                                    start_offset=cursor)
        else:
            host, _, port = args.listen.partition(":")
            source = SocketSource(host or "127.0.0.1",
                                  int(port or 0), stop=stop,
                                  registry=service.stats, bus=bus)
            await source.start()
            print(f"ingesting contacts on tcp://{source.host}:{source.port}")
        if fault_plan is not None:
            from repro.faults.stream import StreamFaultInjector

            source = StreamFaultInjector(source, fault_plan, args.seed,
                                         registry=service.stats, bus=bus)
        if args.wall_limit is not None:
            loop.call_later(args.wall_limit, stop.set)
        try:
            await service.serve(source)
            interrupted = stop.is_set()
            finish = (
                args.finish
                or (args.source == "replay" and not interrupted)
            )
            if finish:
                service.finish()
        finally:
            await service.stop()
            if service.checkpointer is not None:
                service.checkpointer.close()
            if api is not None:
                await api.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        pass
    status = service.status()
    contacts = status["contacts"]
    queries = status["queries"]
    freshness = status["freshness"]
    counters = service.stats.counters()
    print(f"sim time          : {status['sim_time']:,.0f}s "
          f"of {status['horizon']:,.0f}s")
    print(f"contacts ingested : {contacts['ingested']:.0f} "
          f"(late {contacts['shed_late']:.0f}, "
          f"unknown {contacts['shed_unknown']:.0f}, "
          f"malformed {contacts['malformed']:.0f})")
    rejected = counters.get("service.events.rejected", 0)
    if rejected:
        print(f"stream rejects    : {rejected:.0f} malformed line(s) "
              f"quarantined in {ckpt_dir}")
    print(f"queries           : served {queries['served']:.0f}, "
          f"shed {queries['shed']:.0f} "
          f"(p50 {queries['p50_ms']:.3f} ms, p95 {queries['p95_ms']:.3f} ms)")
    print(f"freshness         : {freshness['freshness']:.4f}, "
          f"validity {freshness['validity']:.4f} "
          f"({freshness['fresh']}/{freshness['total']} slots fresh)")
    if ckpt_dir is not None:
        written = counters.get("service.checkpoint.written", 0)
        journal = service.checkpointer.journal if service.checkpointer else None
        print(f"checkpoints       : {written:.0f} manifest(s) in {ckpt_dir}"
              + (f", journal {journal.records} records"
                 f" ({journal.bytes_written:,d} bytes)"
                 if journal is not None else ""))
    if service.runtime.sim.now >= service.horizon and not math.isnan(
        freshness["freshness"]
    ):
        score = service.score()
        print(f"final score       : freshness {score['freshness']:.4f}, "
              f"validity {score['validity']:.4f}, "
              f"messages {score['messages']:.0f}")
        if args.score_json:
            import json as _json

            Path(args.score_json).write_text(
                _json.dumps(score, indent=2) + "\n", encoding="utf-8"
            )
            print(f"score written to  : {args.score_json}")
    if bus is not None:
        from repro.obs.export import write_jsonl

        count = write_jsonl(bus.records, args.trace)
        print(f"trace written to  : {args.trace} ({count} records; "
              "inspect with 'repro report')")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service.loadgen import run_from_args

    return run_from_args(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        check_engine_regression,
        check_scale_regression,
        check_service_regression,
        run_benchmarks,
    )

    if _resolve_jobs_or_complain(args.jobs) is None:
        return 2
    report = run_benchmarks(jobs=args.jobs, path=args.output, quick=args.quick)
    engine = report["engine"]
    print(f"engine    : {engine['events_per_sec']:,.0f} events/s "
          f"(legacy {engine['legacy_events_per_sec']:,.0f}, "
          f"{engine['improvement_pct']:+.1f}%)")
    sweep = report["sweep"]
    if "skipped" in sweep:
        print(f"sweep     : skipped ({sweep['skipped']}, "
              f"{sweep.get('cpus', '?')} usable cpu(s))")
        if sweep.get("note"):
            print(f"            {sweep['note']}")
    else:
        print(f"sweep     : serial {sweep['serial_seconds']:.2f}s, "
              f"jobs={sweep['jobs']} {sweep['parallel_seconds']:.2f}s "
              f"({sweep['speedup']:.2f}x on {sweep['cpus']} cpu(s))")
    scheme = report["scheme"]
    print(f"scheme    : optimised {scheme['optimised_seconds']:.2f}s, "
          f"legacy {scheme['legacy_seconds']:.2f}s "
          f"({scheme['speedup']:.2f}x, identical={scheme['identical']})")
    soa = report["soa"]
    print(f"soa       : object {soa['object_seconds']:.2f}s, "
          f"soa {soa['soa_seconds']:.2f}s over {soa['runs']} runs "
          f"({soa['speedup']:.2f}x, identical={soa['identical']})")
    for point in report["scale"]["points"]:
        if "error" in point:
            print(f"scale     : {point['backend']}@{point['nodes']}: "
                  f"ERROR {point['error']}")
            continue
        build = (f"build {point['build_total_s']:.2f}s"
                 if point.get("build_total_s") is not None
                 else f"build {point['build_s']:.2f}s")
        if point.get("build_contacts_per_sec"):
            build += f" @ {point['build_contacts_per_sec']:,.0f} contacts/s"
        print(f"scale     : {point['backend']:6s} {point['nodes']:>7,} nodes: "
              f"{point['events_per_sec']:>13,.0f} events/s, "
              f"peak RSS {point['peak_rss_mb']:.0f} MB "
              f"(run {point['run_s']:.3f}s, {build})")
    scale = report["scale"]
    print(f"            soa/object at 1k nodes: {scale['soa_speedup_1k']}x "
          f"(floor {scale['speedup_floor']}x), "
          f"RSS ceiling {scale['rss_ceiling_mb']:.0f} MB, "
          f"build floor {scale['build_floor_contacts_per_sec']:,.0f} "
          f"contacts/s at {scale['build_floor_min_nodes']:,}+ nodes")
    for name, row in report["trace_gen"]["profiles"].items():
        print(f"trace_gen : {name}: vectorised {row['vectorised_seconds']:.2f}s, "
              f"scalar {row['scalar_seconds']:.2f}s "
              f"({row['speedup']:.2f}x, identical={row['identical']})")
    obs = report["obs"]
    print(f"obs       : untraced {obs['untraced_seconds']:.2f}s, "
          f"traced {obs['traced_seconds']:.2f}s "
          f"({obs['overhead_pct']:+.1f}%, {obs['records']} records, "
          f"identical={obs['identical']})")
    faults = report["faults"]
    print(f"faults    : no-plan {faults['no_plan_seconds']:.2f}s, "
          f"null-plan {faults['null_plan_seconds']:.2f}s "
          f"({faults['overhead_pct']:+.1f}%, identical={faults['identical']}), "
          f"faulted {faults['faulted_seconds']:.2f}s")
    theory = report["theory"]
    print(f"theory    : predict {theory['predict_seconds']:.2f}s for "
          f"{theory['nodes_predicted']} node CDFs "
          f"(run {theory['baseline_seconds']:.2f}s, "
          f"passive={theory['identical']}), "
          f"max|err| {theory['max_error']:.3f} vs band "
          f"{theory['tolerance']:.3f} (agree={theory['agreement']})")
    service = report["service"]
    throughput = service["throughput"]
    print(f"service   : {throughput['achieved_qps']:,.0f} q/s sustained "
          f"(target {throughput['target_qps']:,.0f}, "
          f"floor {service['qps_floor']:,.0f}), latency ms "
          f"p50 {throughput['p50_ms']:.3f} / p95 {throughput['p95_ms']:.3f} "
          f"/ p99 {throughput['p99_ms']:.3f}, "
          f"identical={service['identical']}")
    overload = service["overload"]
    if "error" in overload:
        print(f"            overload: ERROR {overload['error']}")
    else:
        print(f"            overload 2x: served {overload['completed']}, "
              f"shed {overload['shed']}, peak RSS "
              f"{overload['peak_rss_mb']:.0f} MB "
              f"(ceiling {service['rss_ceiling_mb']:.0f} MB)")
    durability = service.get("durability")
    if durability is not None:
        print(f"            durability: killed={durability['killed']}, "
              f"resume identical={durability['resume_identical']} "
              f"in {durability['resume_seconds']:.1f}s, durable replay "
              f"{durability['durable_replay_seconds']:.1f}s "
              f"({durability['checkpoint_overhead_pct']:+.1f}% vs plain)")
    print(f"wrote {args.output}")
    status = 0
    if args.check_baseline is not None:
        ok, message = check_engine_regression(report, args.check_baseline)
        print(("ok  : " if ok else "FAIL: ") + message)
        if not ok:
            status = 1
        ok, message = check_scale_regression(report, args.check_baseline)
        print(("ok  : " if ok else "FAIL: ") + message)
        if not ok:
            status = 1
        ok, message = check_service_regression(report, args.check_baseline)
        print(("ok  : " if ok else "FAIL: ") + message)
        if not ok:
            status = 1
    if not report["scheme"]["identical"]:
        print("FAIL: scheme benchmark diverged from the legacy paths")
        status = 1
    if not report["soa"]["identical"]:
        print("FAIL: soa backend diverged from the object backend")
        status = 1
    if any(not row["identical"]
           for row in report["trace_gen"]["profiles"].values()):
        print("FAIL: vectorised trace generation diverged from scalar")
        status = 1
    if not report["obs"]["identical"]:
        print("FAIL: traced run metrics diverged from the untraced run")
        status = 1
    if not report["faults"]["identical"]:
        print("FAIL: null fault plan changed run metrics "
              "(no-plan runs must be bit-identical)")
        status = 1
    if not report["faults"]["faulted_differs"]:
        print("FAIL: fault plan injected nothing (faulted run identical "
              "to baseline)")
        status = 1
    if not report["theory"]["identical"]:
        print("FAIL: evaluating the freshness model changed run metrics "
              "(prediction must be passive)")
        status = 1
    if not report["theory"]["agreement"]:
        print("FAIL: model prediction outside the trace's agreement band")
        status = 1
    if not report["service"]["identical"]:
        print("FAIL: live-service replay diverged from the batch run")
        status = 1
    if not report["service"]["overload_ok"]:
        print("FAIL: service overload run unhealthy (no sheds, no "
              "completions, or peak RSS over the ceiling)")
        status = 1
    durability = report["service"].get("durability", {})
    if not (durability.get("killed")
            and durability.get("resume_identical")
            and durability.get("durable_identical")):
        print("FAIL: kill/resume equivalence broken (a SIGKILLed run "
              "resumed from its checkpoint must match the batch run)")
        status = 1
    return status


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    if args.nodes is not None:
        # build+run of one synthetic scaling point -- the vectorised
        # build pipeline (synthesis, estimation, construction) dominates
        # here, which is exactly what this mode is for inspecting
        from repro.experiments.scale import run_scale_point

        profiler.enable()
        result = run_scale_point(args.nodes, backend=args.backend,
                                 scheme=args.scheme)
        profiler.disable()
        tail = (f"nodes={result['nodes']} backend={result['backend']} "
                f"build={result['build_total_s']:.2f}s "
                f"run={result['run_s']:.2f}s")
    else:
        from repro.experiments.bench import reference_settings
        from repro.experiments.runner import make_trace, run_once

        settings = reference_settings(quick=args.quick)
        seed = settings.seeds[0]
        trace = make_trace(settings, seed)
        profiler.enable()
        metrics = run_once(trace, args.scheme, settings, seed=seed,
                           backend=args.backend)
        profiler.disable()
        tail = (f"scheme={metrics.scheme} freshness={metrics.freshness:.4f} "
                f"messages={metrics.messages:.0f}")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(tail)
    if args.output:
        profiler.dump_stats(args.output)
        print(f"wrote {args.output} (open with pstats or snakeviz)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cache-freshness maintenance in opportunistic mobile "
        "networks (ICDCS 2012 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list reproduced tables/figures")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. E3, or 'all'")
    run_parser.add_argument("--fast", action="store_true",
                            help="scaled-down settings (small trace)")
    run_parser.add_argument("--export", metavar="DIR", default=None,
                            help="also write the raw data as CSV files to DIR")
    run_parser.add_argument("--jobs", "-j", type=int, default=None,
                            help="parallel worker processes (0 or -1 = one "
                            "per CPU; default: $REPRO_JOBS, else serial)")
    run_parser.add_argument("--trace", metavar="FILE", default=None,
                            help="write per-run JSONL event traces (one file "
                            "per (seed, scheme) job plus a merged manifest)")
    run_parser.add_argument("--faults", metavar="PLAN.toml", default=None,
                            help="inject faults from a TOML fault plan into "
                            "every simulation run (see docs/ROBUSTNESS.md)")
    run_parser.add_argument("--checkpoint", metavar="DIR", default=None,
                            help="journal completed jobs under DIR/<EXP> "
                            "(default: .repro-checkpoint)")
    run_parser.add_argument("--resume", action="store_true",
                            help="skip jobs already journaled in the "
                            "checkpoint dir by a matching interrupted run")
    run_parser.add_argument("--job-timeout", type=float, metavar="SECONDS",
                            default=None,
                            help="per-job wall-clock limit; timed-out jobs "
                            "retry (needs --jobs > 1)")
    run_parser.add_argument("--max-retries", type=int, metavar="N", default=None,
                            help="retries per failed/timed-out/crashed job "
                            "(default 2 when fault tolerance is active)")

    scenario_parser = sub.add_parser(
        "scenario", help="declarative TOML scenarios (see docs/SCENARIOS.md)"
    )
    scenario_sub = scenario_parser.add_subparsers(dest="action", required=True)

    def _scenario_dir(p):
        p.add_argument("--dir", metavar="DIR", default="scenarios",
                       help="scenario registry directory (default: scenarios/)")

    sc_list = scenario_sub.add_parser("list", help="list registered scenarios")
    _scenario_dir(sc_list)

    sc_show = scenario_sub.add_parser(
        "show", help="describe one scenario and its grid points"
    )
    sc_show.add_argument("name", help="registry name or path to a .toml file")
    _scenario_dir(sc_show)

    sc_validate = scenario_sub.add_parser(
        "validate", help="validate scenario files (all in --dir by default)"
    )
    sc_validate.add_argument("names", nargs="*",
                             help="registry names or .toml paths; default: "
                             "every file under --dir")
    _scenario_dir(sc_validate)

    sc_run = scenario_sub.add_parser("run", help="run a scenario's sweep grid")
    sc_run.add_argument("name", help="registry name or path to a .toml file")
    _scenario_dir(sc_run)
    sc_run.add_argument("--jobs", "-j", type=int, default=None,
                        help="parallel worker processes (0 or -1 = one per "
                        "CPU; default: $REPRO_JOBS, else serial)")
    sc_run.add_argument("--trace", metavar="FILE", default=None,
                        help="write per-run JSONL event traces")
    sc_run.add_argument("--checkpoint", metavar="DIR", default=None,
                        help="journal completed jobs under DIR/<name> "
                        "(default: .repro-checkpoint)")
    sc_run.add_argument("--resume", action="store_true",
                        help="skip jobs already journaled by a matching "
                        "interrupted run")
    sc_run.add_argument("--job-timeout", type=float, metavar="SECONDS",
                        default=None,
                        help="per-job wall-clock limit; timed-out jobs retry "
                        "(needs --jobs > 1)")
    sc_run.add_argument("--max-retries", type=int, metavar="N", default=None,
                        help="retries per failed/timed-out/crashed job "
                        "(default 2 when fault tolerance is active)")

    report_parser = sub.add_parser(
        "report", help="summarise a JSONL event trace (or manifest)"
    )
    report_parser.add_argument("path", help="trace .jsonl or *.manifest.json")
    report_parser.add_argument("--chrome", metavar="FILE", default=None,
                               help="also convert to Chrome trace-event JSON")

    stats_parser = sub.add_parser("trace-stats", help="statistics of a profile")
    stats_parser.add_argument("profile")
    stats_parser.add_argument("--seed", type=int, default=1)

    analyze_parser = sub.add_parser(
        "analyze-trace", help="statistics/centrality of an on-disk trace file"
    )
    analyze_parser.add_argument("path")
    analyze_parser.add_argument("--format", choices=["pairwise", "one"],
                                default="pairwise")
    analyze_parser.add_argument("--time-scale", type=float, default=1.0,
                                help="multiply file timestamps (e.g. 3600 for hours)")
    analyze_parser.add_argument("--window-hours", type=float, default=6.0)
    analyze_parser.add_argument("--top", type=int, default=10)

    sim_parser = sub.add_parser("simulate", help="one ad-hoc simulation")
    sim_parser.add_argument("--scheme", default="hdr")
    sim_parser.add_argument("--profile", default="small")
    sim_parser.add_argument("--days", type=float, default=3.0)
    sim_parser.add_argument("--caching-nodes", type=int, default=5)
    sim_parser.add_argument("--refresh-hours", type=float, default=4.0)
    sim_parser.add_argument("--p-req", type=float, default=0.9)
    sim_parser.add_argument("--seed", type=int, default=1)
    sim_parser.add_argument("--trace", metavar="FILE", default=None,
                            help="write the run's JSONL event trace to FILE")
    sim_parser.add_argument("--faults", metavar="PLAN.toml", default=None,
                            help="inject faults from a TOML fault plan")
    sim_parser.add_argument("--backend", choices=("object", "soa"),
                            default="object",
                            help="simulation engine: per-node object graph "
                            "(full-featured) or vectorised struct-of-arrays "
                            "(metric-identical, faster, no queries/tracing)")

    predict_parser = sub.add_parser(
        "predict",
        help="closed-form freshness predictions for a wired scheme",
    )
    predict_parser.add_argument("--scheme", default="hdr")
    predict_parser.add_argument("--fast", action="store_true",
                                help="scaled-down settings (small trace)")
    predict_parser.add_argument("--refresh-hours", type=float, default=None,
                                help="override the refresh interval")
    predict_parser.add_argument("--max-relays", type=int, default=None,
                                help="override the scheme's replication factor")
    predict_parser.add_argument("--seed", type=int, default=1)
    predict_parser.add_argument("--simulate", action="store_true",
                                help="also run the simulation and diff the "
                                "prediction against the measured metrics")
    predict_parser.add_argument("--json", metavar="FILE", default=None,
                                help="export the full prediction as JSON")
    predict_parser.add_argument("--export", metavar="FILE", default=None,
                                help="export the per-node predictions as CSV")
    predict_parser.add_argument("--trace", metavar="FILE", default=None,
                                help="write model.predict JSONL records "
                                "(best with --simulate)")

    serve_parser = sub.add_parser(
        "serve",
        help="long-running live service: stream contacts, answer queries",
    )
    serve_parser.add_argument("--scheme", default="hdr")
    serve_parser.add_argument("--profile", default="small")
    serve_parser.add_argument("--days", type=float, default=3.0,
                              help="simulation horizon in days")
    serve_parser.add_argument("--seed", type=int, default=1)
    serve_parser.add_argument("--source", choices=("replay", "tail", "tcp"),
                              default="replay",
                              help="contact feed: replay the profile's own "
                              "trace, tail a JSONL file, or accept TCP lines")
    serve_parser.add_argument("--file", metavar="CONTACTS.jsonl", default=None,
                              help="JSONL contact file for --source tail")
    serve_parser.add_argument("--listen", metavar="HOST:PORT",
                              default="127.0.0.1:0",
                              help="ingest endpoint for --source tcp")
    serve_parser.add_argument("--dilation", default="inf",
                              help="replay pacing in sim-seconds per wall "
                              "second (number or 'inf'; --source replay only)")
    serve_parser.add_argument("--http", metavar="HOST:PORT",
                              default="127.0.0.1:8642",
                              help="query/metrics HTTP endpoint ('off' to "
                              "disable)")
    serve_parser.add_argument("--contact-queue", type=int, default=256,
                              help="bounded ingest queue size (backpressure)")
    serve_parser.add_argument("--query-queue", type=int, default=1024,
                              help="bounded query queue size (sheds when full)")
    serve_parser.add_argument("--serve-rate", type=float, default=None,
                              help="throttle the query worker to N served/s")
    serve_parser.add_argument("--wall-limit", type=float, metavar="SECONDS",
                              default=None,
                              help="stop gracefully after this much wall time")
    serve_parser.add_argument("--finish", action="store_true",
                              help="always run remaining events to the "
                              "horizon on shutdown (replay mode does this "
                              "automatically when the stream completes)")
    serve_parser.add_argument("--trace", metavar="FILE", default=None,
                              help="write service.snapshot JSONL records")
    serve_parser.add_argument("--checkpoint", metavar="DIR", default=None,
                              help="journal the ingest stream and write "
                              "periodic crash-safe checkpoints into DIR")
    serve_parser.add_argument("--checkpoint-interval", type=float,
                              metavar="SECONDS", default=None,
                              help="wall seconds between checkpoint "
                              "manifests (default 5)")
    serve_parser.add_argument("--resume", action="store_true",
                              help="restore from the latest checkpoint in "
                              "--checkpoint DIR before serving (falls back "
                              "to a fresh start when DIR is empty)")
    serve_parser.add_argument("--supervised", action="store_true",
                              help="run the service as a supervised child, "
                              "restarting it from checkpoints on crashes "
                              "(requires --checkpoint)")
    serve_parser.add_argument("--max-restarts", type=int, default=5,
                              help="supervised: consecutive crashes before "
                              "the circuit breaker gives up")
    serve_parser.add_argument("--min-healthy", type=float, metavar="SECONDS",
                              default=5.0,
                              help="supervised: uptime that resets the "
                              "consecutive-crash counter")
    serve_parser.add_argument("--faults", metavar="PLAN.toml", default=None,
                              help="inject [stream] faults from a fault "
                              "plan into the ingest feed")
    serve_parser.add_argument("--score-json", metavar="FILE", default=None,
                              help="write the final score as JSON when the "
                              "run reaches the horizon")

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="fire Zipf queries at a live service and report latency",
    )
    from repro.service.loadgen import add_arguments as _loadgen_arguments

    _loadgen_arguments(loadgen_parser)

    bench_parser = sub.add_parser(
        "bench", help="engine/sweep/scheme/trace-gen benchmarks"
    )
    bench_parser.add_argument("--jobs", "-j", type=int, default=4,
                              help="worker processes for the sweep half")
    bench_parser.add_argument("--output", "-o", metavar="FILE",
                              default="BENCH_runner.json",
                              help="JSON report path (default: "
                              "BENCH_runner.json)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="shrunken workloads for CI smoke runs")
    bench_parser.add_argument("--check-baseline", metavar="FILE", default=None,
                              help="fail (exit 1) if engine events/sec drops "
                              ">30%% below this committed report")

    profile_parser = sub.add_parser(
        "profile", help="cProfile one reference-scenario simulation run"
    )
    profile_parser.add_argument("--scheme", default="hdr")
    profile_parser.add_argument("--backend", choices=("object", "soa"),
                                default="object",
                                help="simulation engine to profile")
    profile_parser.add_argument("--nodes", type=int, default=None,
                                help="profile a synthetic scaling point of "
                                "this size (build + run) instead of the "
                                "reference scenario")
    profile_parser.add_argument("--sort", default="cumulative",
                                choices=["cumulative", "tottime", "calls"])
    profile_parser.add_argument("--top", type=int, default=25,
                                help="rows of the stats table to print")
    profile_parser.add_argument("--quick", action="store_true",
                                help="smaller scenario (2 seeds, 3 days)")
    profile_parser.add_argument("--output", "-o", metavar="FILE", default=None,
                                help="also dump raw pstats data to FILE")
    return parser


@contextmanager
def _terminate_as_interrupt():
    """Deliver SIGTERM as ``KeyboardInterrupt`` for the command's duration.

    Long-running commands (sweeps, simulate, serve) hold open state --
    ``TraceSink`` allocations, checkpoint journals, half-written
    exports -- whose context managers flush in their ``finally`` blocks.
    Raising through the normal unwind path lets all of that flush on a
    polite ``kill``, exactly as it already does on Ctrl-C, instead of
    dying mid-write with a traceback.  (``repro serve`` installs its own
    asyncio handlers first; they win while its event loop runs.)
    """
    import signal

    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        previous = None
    try:
        yield
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "scenario": _cmd_scenario,
        "report": _cmd_report,
        "trace-stats": _cmd_trace_stats,
        "analyze-trace": _cmd_analyze_trace,
        "simulate": _cmd_simulate,
        "predict": _cmd_predict,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "bench": _cmd_bench,
        "profile": _cmd_profile,
    }
    try:
        with _terminate_as_interrupt():
            return handlers[args.command](args)
    except KeyboardInterrupt:
        print("\ninterrupted -- shutting down cleanly", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
