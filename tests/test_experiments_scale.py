"""Tests for the scaling benchmark helpers (synthetic schedule + one
measured point per process)."""

from repro.experiments.scale import (
    DAY,
    _pick_sources,
    run_scale_point,
    synthetic_trace,
)
from repro.sim import stats as stats_module


class TestSyntheticTrace:
    def test_every_node_exists_even_without_contacts(self):
        trace = synthetic_trace(50, contacts_per_node=0.5, seed=3)
        assert trace.num_nodes == 50
        assert set(trace.node_ids) == set(range(50))

    def test_endpoints_are_distinct(self):
        trace = synthetic_trace(40, seed=1)
        assert all(c.a != c.b for c in trace)

    def test_contact_volume_scales_with_density(self):
        # The trace may merge the occasional overlapping same-pair draw,
        # so the ratio is approximate.
        sparse = synthetic_trace(100, contacts_per_node=4.0, seed=0)
        dense = synthetic_trace(100, contacts_per_node=16.0, seed=0)
        assert 3.5 * len(sparse) <= len(dense) <= 4 * len(sparse)

    def test_same_seed_is_deterministic(self):
        a = synthetic_trace(30, seed=7)
        b = synthetic_trace(30, seed=7)
        assert [(c.a, c.b, c.start, c.end) for c in a] == \
            [(c.a, c.b, c.start, c.end) for c in b]

    def test_sources_are_sorted_and_in_range(self):
        trace = synthetic_trace(80, seed=2)
        sources = _pick_sources(trace, 4)
        assert sources == sorted(sources)
        assert all(0 <= s < 80 for s in sources)
        assert len(sources) == 4


class TestRunScalePoint:
    def test_point_shape_and_flag_restore(self):
        assert not stats_module.STREAMING_TALLIES
        point = run_scale_point(
            60, backend="soa", duration=0.25 * DAY,
            contacts_per_node=6.0, num_caching_nodes=6, num_items=2,
        )
        assert not stats_module.STREAMING_TALLIES
        assert point["nodes"] == 60
        assert point["backend"] == "soa"
        assert point["events"] > 0
        assert point["events_per_sec"] > 0
        assert point["peak_rss_mb"] > 0
        assert point["run_s"] >= 0

    def test_backends_agree_on_messages(self):
        kwargs = dict(duration=0.25 * DAY, contacts_per_node=6.0,
                      num_caching_nodes=6, num_items=2)
        soa = run_scale_point(60, backend="soa", **kwargs)
        obj = run_scale_point(60, backend="object", **kwargs)
        assert soa["messages"] == obj["messages"]
        assert soa["freshness"] == obj["freshness"]
        assert soa["contacts"] == obj["contacts"]
