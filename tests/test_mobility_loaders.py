"""Tests for trace file loaders and writers."""

import io

import pytest

from repro.mobility.loaders import (
    load_one_report,
    load_pairwise,
    loads_pairwise,
    write_pairwise,
)
from repro.mobility.trace import Contact, ContactTrace


class TestPairwiseFormat:
    def test_basic_parse(self):
        trace = loads_pairwise("0 1 10.0 20.0\n2 3 5 8\n")
        assert len(trace) == 2
        assert trace[0].pair == (2, 3)

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n0 1 1 2  # trailing comment\n"
        trace = loads_pairwise(text)
        assert len(trace) == 1

    def test_malformed_line_raises_with_lineno(self):
        with pytest.raises(ValueError, match="line 2"):
            loads_pairwise("0 1 1 2\n0 1 1\n")

    def test_time_scale(self):
        trace = load_pairwise(io.StringIO("0 1 1 2\n"), time_scale=3600.0)
        assert trace[0].start == 3600.0
        assert trace[0].end == 7200.0

    def test_roundtrip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.txt"
        write_pairwise(tiny_trace, path)
        loaded = load_pairwise(path)
        assert len(loaded) == len(tiny_trace)
        for original, reloaded in zip(tiny_trace, loaded):
            assert original.pair == reloaded.pair
            assert reloaded.start == pytest.approx(original.start, abs=1e-3)

    def test_write_to_handle(self, tiny_trace):
        buffer = io.StringIO()
        write_pairwise(tiny_trace, buffer)
        assert "tiny" in buffer.getvalue()

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("0 1 0 5\n")
        trace = load_pairwise(path)
        assert trace.name == str(path)
        assert len(trace) == 1


class TestOneReportFormat:
    def test_up_down_pairs(self):
        text = "10.0 CONN 0 1 up\n20.0 CONN 0 1 down\n"
        trace = load_one_report(io.StringIO(text))
        assert len(trace) == 1
        assert trace[0].start == 10.0
        assert trace[0].end == 20.0

    def test_unclosed_up_closed_at_last_event(self):
        text = "10.0 CONN 0 1 up\n50.0 CONN 2 3 up\n60.0 CONN 2 3 down\n"
        trace = load_one_report(io.StringIO(text))
        pairs = trace.pair_contacts()
        assert pairs[(0, 1)][0].end == 60.0

    def test_prefixed_node_names(self):
        text = "1.0 CONN n5 n7 up\n2.0 CONN n5 n7 down\n"
        trace = load_one_report(io.StringIO(text))
        assert trace[0].pair == (5, 7)

    def test_reversed_pair_matches(self):
        text = "1.0 CONN 7 2 up\n3.0 CONN 2 7 down\n"
        trace = load_one_report(io.StringIO(text))
        assert len(trace) == 1

    def test_bad_state_raises(self):
        with pytest.raises(ValueError, match="unknown state"):
            load_one_report(io.StringIO("1.0 CONN 0 1 sideways\n"))

    def test_bad_format_raises(self):
        with pytest.raises(ValueError, match="expected"):
            load_one_report(io.StringIO("1.0 PING 0 1 up\n"))

    def test_non_numeric_node_raises(self):
        with pytest.raises(ValueError, match="no numeric id"):
            load_one_report(io.StringIO("1.0 CONN abc def up\n"))

    def test_comments_ignored(self):
        text = "# ONE report\n1.0 CONN 0 1 up\n2.0 CONN 0 1 down\n"
        assert len(load_one_report(io.StringIO(text))) == 1


class TestRoundtripProperty:
    def test_generated_trace_roundtrips(self, rng, tmp_path):
        from repro.mobility.synthetic import PoissonContactModel, homogeneous_rate_matrix

        model = PoissonContactModel(homogeneous_rate_matrix(6, 0.005))
        trace = model.generate(5000.0, rng)
        path = tmp_path / "gen.txt"
        write_pairwise(trace, path)
        loaded = load_pairwise(path)
        assert len(loaded) == len(trace)
        assert loaded.node_ids == trace.node_ids
