"""Tests for Levy-walk mobility and the truncated-Pareto sampler."""

import numpy as np
import pytest

from repro.mobility.levy import LevyWalkModel, truncated_pareto


class TestTruncatedPareto:
    def test_bounds_respected(self):
        rng = np.random.default_rng(3)
        x = truncated_pareto(rng, alpha=1.4, lo=20.0, hi=500.0, size=5000)
        assert x.min() >= 20.0
        assert x.max() <= 500.0

    def test_heavy_tail_shape(self):
        # smaller alpha -> heavier tail -> larger mean
        rng = np.random.default_rng(3)
        heavy = truncated_pareto(rng, alpha=0.8, lo=10.0, hi=1e4, size=20000)
        rng = np.random.default_rng(3)
        light = truncated_pareto(rng, alpha=2.5, lo=10.0, hi=1e4, size=20000)
        assert heavy.mean() > light.mean()

    def test_scalar_draw(self):
        rng = np.random.default_rng(0)
        x = truncated_pareto(rng, alpha=1.5, lo=1.0, hi=10.0)
        assert np.isscalar(x) or x.shape == ()
        assert 1.0 <= float(x) <= 10.0

    def test_deterministic_per_seed(self):
        a = truncated_pareto(np.random.default_rng(9), 1.4, 10, 100, size=64)
        b = truncated_pareto(np.random.default_rng(9), 1.4, 10, 100, size=64)
        assert np.array_equal(a, b)

    def test_parameter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            truncated_pareto(rng, alpha=0.0, lo=1.0, hi=2.0)
        with pytest.raises(ValueError):
            truncated_pareto(rng, alpha=1.0, lo=5.0, hi=2.0)


@pytest.fixture(scope="module")
def model():
    return LevyWalkModel(n=10, area=800.0, radio_range=80.0,
                         sample_interval=10.0)


class TestLevyWalkModel:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LevyWalkModel(n=1)
        with pytest.raises(ValueError):
            LevyWalkModel(n=5, alpha=-1.0)
        with pytest.raises(ValueError):
            LevyWalkModel(n=5, flight_min=5000.0, area=100.0)
        with pytest.raises(ValueError):
            LevyWalkModel(n=5, pause_min=100.0, pause_max=10.0)

    def test_positions_stay_in_arena(self, model):
        positions = model.positions(600.0, np.random.default_rng(1))
        assert positions.shape[1:] == (model.n, 2)
        assert positions.min() >= 0.0
        assert positions.max() <= model.area

    def test_generate_deterministic(self, model):
        a = model.generate(3600.0, np.random.default_rng(5))
        b = model.generate(3600.0, np.random.default_rng(5))
        assert len(a) == len(b)
        for ca, cb in zip(a, b):
            assert (ca.a, ca.b, ca.start, ca.end) == (cb.a, cb.b, cb.start,
                                                      cb.end)

    def test_contacts_well_formed(self, model):
        trace = model.generate(3600.0, np.random.default_rng(5))
        assert len(trace) > 0
        for contact in trace:
            assert 0 <= contact.a < contact.b < model.n
            assert 0.0 <= contact.start < contact.end <= 3600.0 + 1e-9

    def test_arrays_match_object_trace(self, model):
        duration = 3 * 3600.0
        trace = model.generate(duration, np.random.default_rng(7))
        arrays = model.generate_arrays(duration, np.random.default_rng(7))
        assert len(arrays) == len(trace)
        for i, contact in enumerate(trace):
            assert arrays.a[i] == contact.a
            assert arrays.b[i] == contact.b
            assert arrays.start[i] == pytest.approx(contact.start)
            assert arrays.end[i] == pytest.approx(contact.end)


class TestVehicularProfile:
    def test_registered(self):
        from repro.mobility.calibration import get_profile, list_profiles

        assert "vehicular" in list_profiles()
        profile = get_profile("vehicular")
        assert profile.num_nodes == 40

    def test_synthesizes_contacts(self):
        from repro.experiments.config import Settings
        from repro.experiments.runner import make_trace

        settings = Settings(profile="vehicular", duration=6 * 3600.0)
        trace = make_trace(settings, seed=1)
        assert len(trace) > 0
