"""Tests for sweep-grid expansion, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    ScenarioError,
    apply_overrides,
    expand_grid,
    grid_size,
    load_scenario,
    validate_doc,
)
from repro.scenarios.registry import Scenario


def make_scenario(doc, name="test"):
    errors = validate_doc(doc)
    assert not errors, errors
    return Scenario(name=name, title="", description="",
                    path="<inline>", doc=doc)


def base_doc(**grid):
    doc = {"scenario": {"name": "test"}, "run": {"schemes": ["hdr"]}}
    if grid:
        doc["grid"] = grid
    return doc


class TestApplyOverrides:
    def test_deep_copy_leaves_original(self):
        doc = {"settings": {"num_items": 6}}
        out = apply_overrides(doc, {"settings.num_items": 4})
        assert out["settings"]["num_items"] == 4
        assert doc["settings"]["num_items"] == 6

    def test_creates_missing_tables(self):
        out = apply_overrides({}, {"caching.onpath.strategy": "lcd"})
        assert out["caching"]["onpath"]["strategy"] == "lcd"


class TestExpandGrid:
    def test_no_grid_is_one_point(self):
        points = expand_grid(make_scenario(base_doc()))
        assert len(points) == 1
        assert points[0].overrides == ()
        assert points[0].doc["run"]["schemes"] == ["hdr"]

    def test_scalar_axis_count_and_order(self):
        doc = base_doc(axes=[
            {"key": "settings.refresh_interval_hours",
             "values": [6.0, 12.0, 24.0]},
        ])
        points = expand_grid(make_scenario(doc))
        assert [p.doc["settings"]["refresh_interval_hours"]
                for p in points] == [6.0, 12.0, 24.0]
        assert [p.label for p in points] == [
            "refresh_interval_hours=6.0",
            "refresh_interval_hours=12.0",
            "refresh_interval_hours=24.0",
        ]

    def test_cartesian_product_order(self):
        doc = base_doc(axes=[
            {"key": "settings.num_items", "values": [2, 3]},
            {"key": "settings.num_sources", "values": [1, 2]},
        ])
        points = expand_grid(make_scenario(doc))
        combos = [(p.doc["settings"]["num_items"],
                   p.doc["settings"]["num_sources"]) for p in points]
        assert combos == [(2, 1), (2, 2), (3, 1), (3, 2)]

    def test_labeled_cases(self):
        doc = base_doc(axes=[
            {"name": "engine",
             "cases": [
                 {"label": "object"},
                 {"label": "soa", "overrides": {"run.backend": "soa"}},
             ]},
        ])
        points = expand_grid(make_scenario(doc))
        assert points[0].label == "engine=object"
        assert points[0].doc["run"].get("backend", "object") == "object"
        assert points[1].label == "engine=soa"
        assert points[1].doc["run"]["backend"] == "soa"

    def test_grid_table_stripped_from_point_docs(self):
        doc = base_doc(axes=[{"key": "settings.num_items", "values": [2]}])
        points = expand_grid(make_scenario(doc))
        assert "grid" not in points[0].doc

    def test_jointly_invalid_point_rejected_with_label(self):
        # each case is individually valid, but soa + queries-on is not
        doc = {
            "scenario": {"name": "test"},
            "run": {"schemes": ["hdr"]},
            "grid": {"axes": [
                {"key": "run.with_queries", "values": [False, True]},
                {"name": "engine",
                 "cases": [
                     {"label": "object"},
                     {"label": "soa", "overrides": {"run.backend": "soa"}},
                 ]},
            ]},
        }
        with pytest.raises(ScenarioError) as err:
            expand_grid(make_scenario(doc))
        message = str(err.value)
        assert "grid point 3" in message
        assert "with_queries=True/engine=soa" in message

    def test_grid_size_matches_expansion(self, tmp_path):
        from pathlib import Path

        for path in (Path(__file__).resolve().parents[1]
                     / "scenarios").glob("*.toml"):
            scenario = load_scenario(path)
            assert grid_size(scenario) == len(expand_grid(scenario))


# -- hypothesis property tests ---------------------------------------------

_scalar_axes = st.lists(
    st.tuples(
        st.sampled_from([
            ("settings.num_items", st.integers(1, 8)),
            ("settings.fanout", st.integers(1, 5)),
            ("settings.refresh_interval_hours",
             st.floats(1.0, 48.0, allow_nan=False)),
            ("settings.zipf_exponent", st.floats(0.0, 2.0, allow_nan=False)),
        ]),
        st.integers(1, 4),
    ),
    min_size=0,
    max_size=3,
    unique_by=lambda pair: pair[0][0],
)


@st.composite
def grid_docs(draw):
    axes = []
    for (key, value_strategy), count in draw(_scalar_axes):
        values = draw(st.lists(value_strategy, min_size=count,
                               max_size=count, unique=True))
        axes.append({"key": key, "values": values})
    doc = base_doc(**({"axes": axes} if axes else {}))
    return doc, axes


@given(grid_docs())
@settings(max_examples=50, deadline=None)
def test_expansion_count_is_product_of_axis_sizes(case):
    doc, axes = case
    points = expand_grid(make_scenario(doc))
    expected = 1
    for axis in axes:
        expected *= len(axis["values"])
    assert len(points) == expected
    # labels are unique and indices sequential
    assert len({p.label for p in points}) == len(points)
    assert [p.index for p in points] == list(range(len(points)))


@given(grid_docs())
@settings(max_examples=50, deadline=None)
def test_every_point_carries_exactly_its_overrides(case):
    doc, axes = case
    for point in expand_grid(make_scenario(doc)):
        # each axis key appears exactly once in the overrides, and the
        # document reflects the override value
        override_keys = [k for k, _ in point.overrides]
        assert sorted(override_keys) == sorted(a["key"] for a in axes)
        for dotted, value in point.overrides:
            table, _, key = dotted.rpartition(".")
            target = point.doc
            for part in table.split("."):
                target = target[part]
            assert target[key] == value
        # every expanded document is itself a valid scenario document
        assert validate_doc(point.doc) == []


@given(grid_docs())
@settings(max_examples=25, deadline=None)
def test_expansion_is_deterministic(case):
    doc, _ = case
    scenario = make_scenario(doc)
    first = expand_grid(scenario)
    second = expand_grid(scenario)
    assert [(p.label, p.overrides) for p in first] == [
        (p.label, p.overrides) for p in second
    ]
    assert [p.doc for p in first] == [p.doc for p in second]
