"""Tests for query dissemination and response delivery."""

import pytest

from repro.caching.items import CacheEntry, DataCatalog, DataItem
from repro.caching.query import QueryManager
from repro.caching.store import CacheStore
from repro.mobility.trace import Contact, ContactTrace
from repro.routing.epidemic import EpidemicRouting
from tests.conftest import build_network


def make_catalog() -> DataCatalog:
    return DataCatalog(
        [DataItem(item_id=0, source=3, refresh_interval=100.0, lifetime=1e6)]
    )


def wire(trace, catalog, holder=None, holder_version=1, hop_limit=4, ttl=1e6):
    """Wire every node with routing + query manager; ``holder`` caches item 0."""
    net = build_network(trace)
    managers = {}
    for nid, node in net.nodes.items():
        node.add_handler(EpidemicRouting(kinds=frozenset({"response"})))
        store = None
        if nid == holder:
            store = CacheStore()
            store.put(
                CacheEntry(
                    item_id=0, version=holder_version, version_time=0.0, cached_at=0.0
                ),
                0.0,
            )
        manager = QueryManager(
            catalog, store=store, hop_limit=hop_limit, query_ttl=ttl
        )
        node.add_handler(manager)
        managers[nid] = manager
    net.start()
    return net, managers


class TestQueryFlow:
    def test_answered_by_caching_node(self, line_trace):
        net, managers = wire(line_trace, make_catalog(), holder=2)
        net.sim.run(until=5.0)
        record = managers[0].issue_query(0)
        net.sim.run(until=1000.0)
        assert record.answered
        assert record.version == 1
        assert record.served_by == 2

    def test_local_hit_answers_instantly(self, line_trace):
        net, managers = wire(line_trace, make_catalog(), holder=0)
        net.sim.run(until=5.0)
        record = managers[0].issue_query(0)
        assert record.answered
        assert record.delay == 0.0
        assert record.served_by == 0

    def test_unanswerable_query_stays_open(self, line_trace):
        net, managers = wire(line_trace, make_catalog(), holder=None)
        net.sim.run(until=5.0)
        record = managers[0].issue_query(0)
        net.sim.run(until=1000.0)
        assert not record.answered

    def test_response_routed_back_multihop(self, line_trace):
        """Query 0 -> ... -> 3; response 3 -> ... -> 0."""
        net, managers = wire(line_trace, make_catalog(), holder=3)
        net.sim.run(until=5.0)
        record = managers[0].issue_query(0)
        net.sim.run(until=1000.0)
        assert record.answered
        assert record.served_by == 3
        # took at least a full sweep there and one back
        assert record.delay > 50.0

    def test_first_answer_wins(self, line_trace):
        net, managers = wire(line_trace, make_catalog(), holder=1)
        # node 2 also holds a newer version
        store2 = CacheStore()
        store2.put(CacheEntry(item_id=0, version=5, version_time=0.0, cached_at=0.0), 0.0)
        managers[2].store = store2
        managers[2].providers.append(managers[2]._store_provider)
        net.sim.run(until=5.0)
        record = managers[0].issue_query(0)
        net.sim.run(until=1000.0)
        assert record.served_by == 1  # closer node answers first

    def test_hop_limit_bounds_flood(self):
        # star around node 1: 0-1, then 1 meets 2, 2 meets 3 (holder)
        contacts = [
            Contact.make(0, 1, 10.0, 15.0),
            Contact.make(1, 2, 20.0, 25.0),
            Contact.make(2, 3, 30.0, 35.0),
        ]
        trace = ContactTrace(contacts, node_ids=[0, 1, 2, 3])
        net, managers = wire(trace, make_catalog(), holder=3, hop_limit=1)
        net.sim.run(until=5.0)
        record = managers[0].issue_query(0)
        net.sim.run(until=1000.0)
        # flood stops at node 1 (hop 1); holder never sees the query
        assert not record.answered

    def test_query_ttl_stops_forwarding(self, line_trace):
        net, managers = wire(line_trace, make_catalog(), holder=3, ttl=15.0)
        net.sim.run(until=5.0)
        record = managers[0].issue_query(0)
        net.sim.run(until=1000.0)
        assert not record.answered

    def test_unknown_item_raises(self, line_trace):
        net, managers = wire(line_trace, make_catalog())
        net.start()
        with pytest.raises(KeyError):
            managers[0].issue_query(99)


class TestProviders:
    def test_source_provider_priority(self, line_trace):
        catalog = make_catalog()
        net, managers = wire(line_trace, catalog, holder=1, holder_version=3)
        # node 1 also gets an authoritative provider with a newer version
        managers[1].add_provider(lambda item_id: (7, 0.0))
        net.sim.run(until=5.0)
        record = managers[0].issue_query(0)
        net.sim.run(until=1000.0)
        assert record.version == 7

    def test_stats_counters(self, line_trace):
        net, managers = wire(line_trace, make_catalog(), holder=2)
        net.sim.run(until=5.0)
        managers[0].issue_query(0)
        net.sim.run(until=1000.0)
        assert managers[0].stats.counter_value("query.issued") == 1
        assert managers[0].stats.counter_value("query.completed") == 1
        assert managers[2].stats.counter_value("query.answered") == 1
