"""Tests for the live service mode (:mod:`repro.service`).

The anchor test is replay equivalence: streaming a recorded trace
through the service at infinite time-dilation must produce scores
field-identical to the batch ``run_once`` on the same (trace, scheme,
seed).  The rest covers the backpressure contract (contacts block,
queries shed), the pipeline/source/HTTP plumbing, and the CLI's
graceful-shutdown behaviour via real subprocesses.
"""

import asyncio
import json
import math
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.config import DAY, Settings
from repro.service import (
    ContactEvent,
    FileTailSource,
    HttpApi,
    MalformedEvent,
    Pipeline,
    ReplaySource,
    SocketSource,
    replay,
    replay_scores,
    scores_match,
    service_from_settings,
)
from repro.service.pipeline import Handler

REPO_ROOT = Path(__file__).resolve().parent.parent


def _settings(days: float = 2.0, seed: int = 1) -> Settings:
    return Settings.fast().with_(duration=days * DAY, seeds=(seed,))


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


class TestContactEvent:
    def test_line_roundtrip(self):
        event = ContactEvent(a=3, b=7, start=10.0, end=15.5)
        assert ContactEvent.from_line(event.to_line()) == event

    def test_malformed_line_raises(self):
        with pytest.raises(MalformedEvent):
            ContactEvent.from_line("not json at all")
        with pytest.raises(MalformedEvent):
            ContactEvent.from_line('{"a": 1}')

    def test_end_before_start_rejected(self):
        with pytest.raises(MalformedEvent):
            ContactEvent(a=0, b=1, start=10.0, end=5.0)


class TestReplayEquivalence:
    """Infinite-dilation replay == batch run, field for field."""

    @pytest.mark.parametrize("scheme", ["hdr", "flooding"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_batch_run(self, scheme, seed):
        from repro.experiments.runner import make_trace, run_once

        settings = _settings(seed=seed)
        trace = make_trace(settings, seed)
        batch = run_once(trace, scheme, settings, seed=seed)
        score = replay_scores(settings, seed=seed, scheme=scheme)
        assert scores_match(score, batch), (
            f"replay diverged from batch for {scheme}/seed={seed}: "
            f"{score} vs {batch}"
        )

    def test_finite_dilation_same_scores(self):
        """Pacing changes wall-clock timing, never the simulation."""
        from repro.experiments.runner import make_trace, run_once

        settings = _settings(days=1.0)
        trace = make_trace(settings, 1)
        batch = run_once(trace, "hdr", settings, seed=1)
        score = replay_scores(settings, seed=1, scheme="hdr", dilation=1e6)
        assert scores_match(score, batch)


class TestBackpressure:
    def test_full_query_queue_sheds(self):
        async def scenario():
            service, _ = service_from_settings(
                _settings(), seed=1, query_queue=4
            )
            # no worker running, so the queue only fills
            futures = [service.submit_query(0) for _ in range(10)]
            status = service.status()
            assert status["queries"]["offered"] == 10
            assert status["queries"]["shed"] == 6
            assert status["queries"]["queue_depth"] == 4
            assert [f is None for f in futures].count(True) == 6

        asyncio.run(scenario())

    def test_contacts_never_shed_only_filtered(self):
        """Late/unknown/past-horizon contacts are counted, not queued."""
        async def scenario():
            service, trace = service_from_settings(_settings(), seed=1)
            known = trace.node_ids[0], trace.node_ids[1]
            service.ingest_batch([
                ContactEvent(*known, start=100.0, end=160.0)
            ])
            service.ingest_batch([
                ContactEvent(*known, start=50.0, end=90.0),      # late
                ContactEvent(a=10**6, b=known[0],                # unknown
                             start=200.0, end=260.0),
                ContactEvent(*known, start=service.horizon + 1,  # beyond
                             end=service.horizon + 2),
            ])
            contacts = service.status()["contacts"]
            assert contacts["ingested"] == 1
            assert contacts["shed_late"] == 1
            assert contacts["shed_unknown"] == 1
            assert contacts["shed_past_horizon"] == 1

        asyncio.run(scenario())

    def test_overload_subprocess_sheds_within_rss_cap(self):
        """2x overload: bounded queue sheds, memory stays flat."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.service.loadgen", "--json",
             "--days", "2", "--rate", "1000", "--duration", "2",
             "--serve-rate", "500", "--query-queue", "64"],
            capture_output=True, text=True, env=_subprocess_env(),
            cwd=REPO_ROOT, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["shed"] > 0, "overload produced no sheds"
        assert report["completed"] > 0, "overload served nothing"
        assert report["errors"] == 0
        assert report["peak_rss_mb"] < 600.0, (
            f"overloaded service used {report['peak_rss_mb']:.0f} MB"
        )


class _Doubler(Handler):
    name = "double"

    async def handle(self, item):
        return item * 2


class _Collector(Handler):
    name = "collect"

    def __init__(self):
        self.items = []

    async def handle(self, item):
        self.items.append(item)
        return None


class TestPipeline:
    @staticmethod
    async def _numbers():
        for value in (1, 2, 3):
            yield value

    def test_stages_chain_and_instrument(self):
        async def scenario():
            collector = _Collector()
            pipeline = Pipeline([_Doubler(), collector])
            await pipeline.run(self._numbers())
            assert collector.items == [2, 4, 6]
            counters = pipeline.registry.counters()
            assert counters["service.stage.double.in"] == 3
            assert counters["service.stage.double.out"] == 3
            assert counters["service.stage.collect.in"] == 3
            snapshot = pipeline.registry.snapshot(0.0)
            assert "service.stage.double_ms" in json.dumps(snapshot)

        asyncio.run(scenario())

    def test_malformed_lines_counted_and_dropped(self):
        async def scenario():
            service, trace = service_from_settings(_settings(), seed=1)
            a, b = trace.node_ids[0], trace.node_ids[1]
            lines = [
                json.dumps({"a": a, "b": b, "start": 100.0, "end": 160.0}),
                "garbage line",
                '{"a": 1}',
            ]

            async def source():
                yield lines

            await service.serve(source())
            await service.stop()
            status = service.status()
            assert status["contacts"]["ingested"] == 1
            assert status["contacts"]["malformed"] == 2

        asyncio.run(scenario())

    def test_validation(self):
        with pytest.raises(ValueError):
            Pipeline([])
        with pytest.raises(ValueError):
            Pipeline([_Doubler()], queue_size=0)


class TestSources:
    def test_file_source_one_shot(self, tmp_path):
        path = tmp_path / "contacts.jsonl"
        events = [ContactEvent(a=0, b=1, start=float(k), end=k + 0.5)
                  for k in range(5)]
        path.write_text("".join(e.to_line() + "\n" for e in events))

        async def scenario():
            lines = []
            async for batch in FileTailSource(path, follow=False):
                lines.extend(batch)
            return [ContactEvent.from_line(line) for line in lines]

        assert asyncio.run(scenario()) == events

    def test_replay_source_batches_in_order(self):
        events = [ContactEvent(a=0, b=1, start=float(k), end=k + 0.5)
                  for k in range(10)]

        async def scenario():
            seen = []
            async for batch in ReplaySource(events, batch_size=3):
                seen.append(len(batch))
            return seen

        assert asyncio.run(scenario()) == [3, 3, 3, 1]

    def test_socket_source_receives_lines(self):
        async def scenario():
            source = SocketSource()
            await source.start()
            reader, writer = await asyncio.open_connection(
                source.host, source.port
            )
            event = ContactEvent(a=2, b=3, start=5.0, end=9.0)
            writer.write((event.to_line() + "\n").encode())
            await writer.drain()

            iterator = source.__aiter__()
            batch = await asyncio.wait_for(iterator.__anext__(), timeout=5)
            source.stop.set()
            writer.close()
            return [ContactEvent.from_line(line) for line in batch]

        assert asyncio.run(scenario()) == [
            ContactEvent(a=2, b=3, start=5.0, end=9.0)
        ]

    def test_replay_source_validation(self):
        with pytest.raises(ValueError):
            ReplaySource([], dilation=0.0)
        with pytest.raises(ValueError):
            ReplaySource([], batch_size=0)


class TestHttpApi:
    @staticmethod
    async def _get(api: HttpApi, path: str) -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(api.host, api.port)
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            .encode()
        )
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        raw = await reader.read()
        writer.close()
        body = raw.split(b"\r\n\r\n", 1)[1]
        return status, json.loads(body)

    def test_routes(self):
        async def scenario():
            service, trace = service_from_settings(_settings(), seed=1)
            await service.start()
            api = HttpApi(service)
            await api.start()
            try:
                status, body = await self._get(api, "/healthz")
                assert status == 200
                assert body == {"ok": True, "state": "ok",
                                "degraded": False}
                status, body = await self._get(api, "/status")
                assert status == 200
                assert body["scheme"] == "hdr"
                status, body = await self._get(api, "/freshness")
                assert status == 200
                assert body["total"] > 0
                status, body = await self._get(api, "/query?item=0")
                assert status == 200
                assert body["item_id"] == 0
                status, body = await self._get(api, "/query?item=999")
                assert status == 404
                status, body = await self._get(api, "/query?item=nope")
                assert status == 400
                status, body = await self._get(api, "/query")
                assert status == 400
                status, body = await self._get(api, "/missing")
                assert status == 404
            finally:
                await api.stop()
                await service.stop()

        asyncio.run(scenario())


class TestServeAndLoad:
    def test_in_process_serve_with_load(self):
        """Replay + open-loop load: clean shutdown, latency measured."""
        from repro.service.loadgen import run_loadgen

        report = run_loadgen(days=1.0, seed=1, rate=300.0, duration=1.0)
        assert report["completed"] > 0
        assert report["shed"] == 0
        assert report["errors"] == 0
        assert math.isfinite(report["p50_ms"])
        assert math.isfinite(report["p95_ms"])
        assert report["contacts_ingested"] > 0
        assert report["sim_time"] > 0

    def test_replay_helper_scores(self):
        async def scenario():
            service, trace = service_from_settings(_settings(days=1.0), seed=1)
            return await replay(service, trace)

        score = asyncio.run(scenario())
        assert 0.0 <= score["freshness"] <= 1.0
        assert score["messages"] >= 0


class TestCliLifecycle:
    def test_serve_runs_to_completion(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve", "--days", "1",
             "--http", "off", "--wall-limit", "60"],
            capture_output=True, text=True, env=_subprocess_env(),
            cwd=REPO_ROOT, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "final score" in proc.stdout
        assert "contacts ingested" in proc.stdout

    def test_loadgen_json_report(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "loadgen", "--days", "1",
             "--rate", "200", "--duration", "1", "--json"],
            capture_output=True, text=True, env=_subprocess_env(),
            cwd=REPO_ROOT, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["completed"] > 0

    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_simulate_interrupts_cleanly(self, signum):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "simulate",
             "--days", "200", "--profile", "small"],
            env=_subprocess_env(), cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        time.sleep(3.0)
        proc.send_signal(signum)
        out, err = proc.communicate(timeout=60)
        if proc.returncode == 0:
            pytest.skip("simulation finished before the signal landed")
        assert proc.returncode == 130, err
        assert "Traceback" not in err
        assert "shutting down cleanly" in err

    def test_serve_sigterm_graceful(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        feed.write_text("")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--days", "1",
             "--source", "tail", "--file", str(feed), "--http", "off"],
            env=_subprocess_env(), cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        time.sleep(4.0)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        assert "Traceback" not in err
        assert "sim time" in out
