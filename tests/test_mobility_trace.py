"""Unit and property tests for the contact-trace data model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.trace import Contact, ContactTrace


class TestContact:
    def test_make_normalises_pair_order(self):
        contact = Contact.make(5, 2, 0.0, 1.0)
        assert (contact.a, contact.b) == (2, 5)

    def test_self_contact_rejected(self):
        with pytest.raises(ValueError):
            Contact.make(1, 1, 0.0, 1.0)

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            Contact.make(0, 1, 5.0, 4.0)

    def test_duration_and_pair(self):
        contact = Contact.make(0, 1, 2.0, 7.0)
        assert contact.duration == 5.0
        assert contact.pair == (0, 1)

    def test_peer_of(self):
        contact = Contact.make(0, 1, 0.0, 1.0)
        assert contact.peer_of(0) == 1
        assert contact.peer_of(1) == 0
        with pytest.raises(ValueError):
            contact.peer_of(9)

    def test_involves(self):
        contact = Contact.make(3, 7, 0.0, 1.0)
        assert contact.involves(3)
        assert contact.involves(7)
        assert not contact.involves(5)

    def test_ordering_is_by_start(self):
        early = Contact.make(0, 1, 1.0, 2.0)
        late = Contact.make(0, 1, 3.0, 4.0)
        assert early < late


class TestContactTrace:
    def test_sorted_on_construction(self):
        trace = ContactTrace(
            [Contact.make(0, 1, 50.0, 60.0), Contact.make(0, 1, 10.0, 20.0)]
        )
        assert [c.start for c in trace] == [10.0, 50.0]

    def test_node_ids_inferred(self):
        trace = ContactTrace([Contact.make(4, 9, 0.0, 1.0)])
        assert trace.node_ids == (4, 9)

    def test_explicit_node_ids_validated(self):
        with pytest.raises(ValueError):
            ContactTrace([Contact.make(0, 5, 0.0, 1.0)], node_ids=[0, 1])

    def test_overlapping_contacts_merged(self):
        trace = ContactTrace(
            [
                Contact.make(0, 1, 0.0, 10.0),
                Contact.make(0, 1, 5.0, 15.0),
                Contact.make(0, 1, 20.0, 25.0),
            ]
        )
        assert len(trace) == 2
        assert trace[0].end == 15.0

    def test_merge_keeps_distinct_pairs_apart(self):
        trace = ContactTrace(
            [Contact.make(0, 1, 0.0, 10.0), Contact.make(0, 2, 5.0, 15.0)]
        )
        assert len(trace) == 2

    def test_merge_can_be_disabled(self):
        trace = ContactTrace(
            [Contact.make(0, 1, 0.0, 10.0), Contact.make(0, 1, 5.0, 15.0)],
            merge_overlaps=False,
        )
        assert len(trace) == 2

    def test_span_properties(self, tiny_trace):
        assert tiny_trace.start_time == 10.0
        assert tiny_trace.end_time == 95.0
        assert tiny_trace.duration == 85.0
        assert tiny_trace.num_nodes == 4

    def test_empty_trace(self):
        trace = ContactTrace([])
        assert len(trace) == 0
        assert trace.duration == 0.0

    def test_pair_contacts_grouping(self, tiny_trace):
        pairs = tiny_trace.pair_contacts()
        assert len(pairs[(0, 1)]) == 2
        assert len(pairs[(1, 2)]) == 1

    def test_contacts_of(self, tiny_trace):
        involving_0 = tiny_trace.contacts_of(0)
        assert len(involving_0) == 3
        assert all(c.involves(0) for c in involving_0)

    def test_window_clips(self, tiny_trace):
        windowed = tiny_trace.window(15.0, 35.0)
        assert all(15.0 <= c.start and c.end <= 35.0 for c in windowed)
        # contact (0,1,10,20) clipped to (15,20); (1,2,30,40) to (30,35)
        assert len(windowed) == 2

    def test_window_without_clip_keeps_overlapping(self, tiny_trace):
        windowed = tiny_trace.window(15.0, 35.0, clip=False)
        assert any(c.start == 10.0 for c in windowed)

    def test_window_invalid(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.window(10.0, 5.0)

    def test_subset(self, tiny_trace):
        sub = tiny_trace.subset([0, 1, 2])
        assert all(c.a in {0, 1, 2} and c.b in {0, 1, 2} for c in sub)
        assert len(sub) == 4  # the (2,3) contact is dropped

    def test_shifted(self, tiny_trace):
        moved = tiny_trace.shifted(100.0)
        assert moved.start_time == tiny_trace.start_time + 100.0
        assert len(moved) == len(tiny_trace)

    def test_inter_contact_times(self):
        trace = ContactTrace(
            [
                Contact.make(0, 1, 0.0, 10.0),
                Contact.make(0, 1, 30.0, 40.0),
                Contact.make(0, 1, 100.0, 110.0),
            ]
        )
        gaps = trace.inter_contact_times()
        assert gaps[(0, 1)] == [20.0, 60.0]

    def test_stats(self):
        trace = ContactTrace(
            [
                Contact.make(0, 1, 0.0, 10.0),
                Contact.make(0, 1, 30.0, 40.0),
                Contact.make(2, 3, 5.0, 15.0),
            ]
        )
        stats = trace.stats()
        assert stats.num_nodes == 4
        assert stats.num_contacts == 3
        assert stats.num_pairs_with_contact == 2
        assert stats.mean_contacts_per_pair == 1.5
        assert stats.mean_contact_duration == 10.0
        assert stats.mean_inter_contact == 20.0
        assert stats.median_inter_contact == 20.0

    def test_stats_no_gaps(self):
        trace = ContactTrace([Contact.make(0, 1, 0.0, 1.0)])
        assert math.isnan(trace.stats().mean_inter_contact)

    def test_stats_as_row_units(self):
        trace = ContactTrace(
            [Contact.make(0, 1, 0.0, 3600.0), Contact.make(0, 1, 7200.0, 10800.0)]
        )
        row = trace.stats().as_row()
        assert row["mean_intercontact_h"] == pytest.approx(1.0)
        assert row["duration_days"] == pytest.approx(10800.0 / 86400.0)


@st.composite
def contact_lists(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    count = draw(st.integers(min_value=1, max_value=40))
    contacts = []
    for _ in range(count):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1).filter(lambda x: x != a))
        start = draw(st.floats(min_value=0, max_value=1e4, allow_nan=False))
        length = draw(st.floats(min_value=0.001, max_value=100, allow_nan=False))
        contacts.append(Contact.make(a, b, start, start + length))
    return contacts


class TestTraceProperties:
    @given(contact_lists())
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, contacts):
        trace = ContactTrace(contacts)
        # sorted
        starts = [c.start for c in trace]
        assert starts == sorted(starts)
        # normalised pairs, positive durations
        for c in trace:
            assert c.a < c.b
            assert c.end >= c.start
        # merged: no overlapping contacts of the same pair
        for pair, pair_contacts in trace.pair_contacts().items():
            for prev, nxt in zip(pair_contacts, pair_contacts[1:]):
                assert nxt.start > prev.end

    @given(contact_lists())
    @settings(max_examples=30, deadline=None)
    def test_merge_preserves_covered_time(self, contacts):
        """Merging must preserve each pair's total covered time."""

        def covered(intervals):
            total = 0.0
            for start, end in sorted(intervals):
                total += end - start
            return total

        by_pair: dict = {}
        for c in contacts:
            by_pair.setdefault(c.pair, []).append((c.start, c.end))

        def union_length(intervals):
            intervals = sorted(intervals)
            total = 0.0
            current_start, current_end = intervals[0]
            for start, end in intervals[1:]:
                if start <= current_end:
                    current_end = max(current_end, end)
                else:
                    total += current_end - current_start
                    current_start, current_end = start, end
            total += current_end - current_start
            return total

        trace = ContactTrace(contacts)
        merged_by_pair: dict = {}
        for c in trace:
            merged_by_pair.setdefault(c.pair, []).append((c.start, c.end))
        for pair, intervals in by_pair.items():
            assert covered(merged_by_pair[pair]) == pytest.approx(
                union_length(intervals)
            )

    @given(contact_lists(), st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_shift_preserves_structure(self, contacts, offset):
        trace = ContactTrace(contacts)
        moved = trace.shifted(offset)
        assert len(moved) == len(trace)
        # Adding the offset can absorb sub-epsilon start differences and
        # reorder ties, so compare as multisets keyed by pair.
        before_sorted = sorted(trace, key=lambda c: (c.pair, c.start))
        after_sorted = sorted(moved, key=lambda c: (c.pair, c.start))
        for before, after in zip(before_sorted, after_sorted):
            assert after.pair == before.pair
            assert after.start == pytest.approx(before.start + offset, abs=1e-6)
