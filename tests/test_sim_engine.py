"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Event, SimulationError, Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(5.0, order.append, "b")
        sim.schedule_at(1.0, order.append, "a")
        sim.schedule_at(9.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_ties_broken_by_priority_then_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, order.append, "late", priority=10)
        sim.schedule_at(1.0, order.append, "first", priority=0)
        sim.schedule_at(1.0, order.append, "second", priority=0)
        sim.run()
        assert order == ["first", "second", "late"]

    def test_schedule_after_is_relative(self):
        sim = Simulator(start_time=100.0)
        seen = []
        sim.schedule_after(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [105.0]

    def test_scheduling_in_past_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(9.999, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)

    def test_scheduling_at_now_runs_after_current(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule_at(sim.now, order.append, "nested")

        sim.schedule_at(1.0, first)
        sim.schedule_at(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second", "nested"]


class TestRun:
    def test_until_is_inclusive(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, seen.append, "at")
        sim.schedule_at(5.0001, seen.append, "after")
        sim.run(until=5.0)
        assert seen == ["at"]

    def test_clock_reaches_until_even_when_drained(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_run_resumes(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, seen.append, 1)
        sim.schedule_at(10.0, seen.append, 10)
        sim.run(until=5.0)
        assert seen == [1]
        sim.run(until=20.0)
        assert seen == [1, 10]

    def test_max_events(self):
        sim = Simulator()
        seen = []
        for t in range(5):
            sim.schedule_at(float(t), seen.append, t)
        sim.run(max_events=2)
        assert seen == [0, 1]

    def test_events_executed_counts_only_run_events(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        event.cancel()
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert sim.events_executed == 1

    def test_reentrant_run_raises(self):
        sim = Simulator()

        def reenter():
            sim.run()

        sim.schedule_at(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()


class TestCancelStepPeek:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule_at(1.0, seen.append, "cancelled")
        sim.schedule_at(2.0, seen.append, "kept")
        event.cancel()
        sim.run()
        assert seen == ["kept"]

    def test_step_runs_single_event(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, seen.append, "a")
        sim.schedule_at(2.0, seen.append, "b")
        assert sim.step() is True
        assert seen == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        event.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_empty(self):
        assert Simulator().peek_time() is None


class TestEventOrderingProperty:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                st.integers(min_value=-5, max_value=5),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pops_in_sorted_order(self, specs):
        sim = Simulator()
        executed = []

        def record(time, priority, index):
            executed.append((time, priority, index))

        for index, (time, priority) in enumerate(specs):
            sim.schedule_at(time, record, time, priority, index, priority=priority)
        sim.run()
        assert executed == sorted(executed)
        assert len(executed) == len(specs)

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_clock_never_goes_backwards(self, times):
        sim = Simulator()
        observed = []
        for t in times:
            sim.schedule_at(t, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


class TestEventDataclass:
    def test_event_comparison_ignores_callback(self):
        a = Event(1.0, 0, 0, lambda: None)
        b = Event(1.0, 0, 1, print)
        assert a < b


class TestHeapOrderEquivalence:
    """The tuple-entry heap must pop in exactly the order the old
    ``@dataclass(order=True)`` event heap did."""

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                st.integers(min_value=-3, max_value=3),
                st.booleans(),
            ),
            min_size=1,
            max_size=150,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pop_order_matches_legacy_dataclass_heap(self, specs):
        import heapq
        from dataclasses import dataclass, field
        from typing import Callable

        @dataclass(order=True)
        class LegacyEvent:  # the seed engine's heap entry, verbatim
            time: float
            priority: int
            seq: int
            callback: Callable[..., None] = field(compare=False)
            args: tuple = field(compare=False, default=())
            cancelled: bool = field(compare=False, default=False)

        legacy_heap = []
        cancelled_seqs = set()
        sim = Simulator()
        current_order = []

        def record(event):
            current_order.append(event.sort_key())

        for seq, (time, priority, cancel) in enumerate(specs):
            heapq.heappush(
                legacy_heap, LegacyEvent(time, priority, seq, lambda: None)
            )
            event = sim.schedule_at(time, record, priority=priority)
            event.args = (event,)
            if cancel:
                cancelled_seqs.add(seq)
                event.cancel()

        legacy_order = []
        while legacy_heap:
            legacy = heapq.heappop(legacy_heap)
            if legacy.seq not in cancelled_seqs:
                legacy_order.append((legacy.time, legacy.priority, legacy.seq))
        sim.run()

        assert current_order == legacy_order


class TestNonFiniteTimes:
    def test_schedule_at_rejects_nan(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="non-finite"):
            sim.schedule_at(float("nan"), lambda: None)

    @pytest.mark.parametrize("bad", [float("inf"), float("-inf")])
    def test_schedule_at_rejects_inf(self, bad):
        sim = Simulator()
        with pytest.raises(SimulationError, match="non-finite"):
            sim.schedule_at(bad, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_schedule_after_rejects_non_finite_delay(self, bad):
        sim = Simulator()
        with pytest.raises(SimulationError, match="non-finite"):
            sim.schedule_after(bad, lambda: None)

    def test_heap_stays_usable_after_rejection(self):
        # a NaN time used to slip into the heap and poison its ordering
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, fired.append, "a")
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), fired.append, "poison")
        sim.schedule_at(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b"]


class TestCancelledCompaction:
    def test_mass_cancellation_shrinks_heap(self):
        sim = Simulator()
        events = [sim.schedule_at(float(i), lambda: None) for i in range(1000)]
        for event in events[:900]:
            event.cancel()
        # lazy deletion alone would leave all 1000 entries in the heap
        assert sim.pending < 500
        sim.run()
        assert sim.events_executed == 100

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        events = [sim.schedule_at(float(i), lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
            event.cancel()
        sim.run()
        assert sim.events_executed == 0

    def test_pop_order_preserved_across_compaction(self):
        sim = Simulator()
        fired = []
        keep = []
        for i in range(300):
            event = sim.schedule_at(float(i % 7), fired.append, i,
                                    priority=i % 3)
            if i % 4 == 0:
                keep.append((i % 7, i % 3, i))
            else:
                event.cancel()
        sim.run()
        assert fired == [seq for (_, _, seq) in sorted(keep)]

    def test_cancel_inside_callback_compacts_safely(self):
        sim = Simulator()
        victims = [sim.schedule_at(5.0, lambda: None) for _ in range(200)]
        fired = []

        def cancel_all():
            for event in victims:
                event.cancel()

        sim.schedule_at(1.0, cancel_all)
        sim.schedule_at(6.0, fired.append, "late")
        sim.run()
        assert fired == ["late"]
        assert sim.events_executed == 2


class TestScheduleBatch:
    """Bulk scheduling must be indistinguishable (in pop order) from the
    equivalent sequence of ``schedule_at`` calls."""

    def test_empty_batch_is_noop(self):
        sim = Simulator()
        assert sim.schedule_batch([]) == 0
        sim.run()
        assert sim.events_executed == 0

    def test_batch_matches_sequential_pop_order(self):
        spec = [(float(i % 5), i % 3, i) for i in range(200)]

        fired_seq = []
        sim_seq = Simulator()
        for time, priority, tag in spec:
            sim_seq.schedule_at(time, fired_seq.append, tag,
                                priority=priority)
        sim_seq.run()

        fired_batch = []
        sim_batch = Simulator()
        count = sim_batch.schedule_batch(
            [(time, priority, fired_batch.append, (tag,))
             for time, priority, tag in spec]
        )
        sim_batch.run()

        assert count == len(spec)
        assert fired_batch == fired_seq

    def test_batch_interleaves_with_dynamic_events(self):
        """Events scheduled after the batch (dynamic protocol events)
        break time/priority ties *after* the batch entries, exactly as
        with sequential scheduling."""
        fired = []
        sim = Simulator()
        sim.schedule_batch([(1.0, 0, fired.append, ("static",))])
        sim.schedule_at(1.0, fired.append, "dynamic", priority=0)
        sim.run()
        assert fired == ["static", "dynamic"]

    def test_batch_rejects_past_times(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_batch([(1.0, 0, lambda: None, ())])

    def test_batch_rejects_non_finite_times(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_batch([(float("nan"), 0, lambda: None, ())])

    @given(st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=60,
    ))
    @settings(max_examples=50, deadline=None)
    def test_batch_pop_order_property(self, pairs):
        spec = [(time, priority, i)
                for i, (time, priority) in enumerate(pairs)]
        fired = []
        sim = Simulator()
        sim.schedule_batch(
            [(time, priority, fired.append, (tag,))
             for time, priority, tag in spec]
        )
        sim.run()
        assert fired == [
            tag for (_, _, tag) in
            sorted(spec, key=lambda e: (e[0], e[1], e[2]))
        ]
