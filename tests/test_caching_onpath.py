"""Tests for LCE/LCD on-path caching of query responses."""

import pytest

from repro.caching.onpath import OnPathConfig
from repro.caching.store import EvictionPolicy
from repro.experiments.config import Settings
from repro.experiments.runner import make_trace, run_once


class TestOnPathConfig:
    def test_defaults(self):
        config = OnPathConfig()
        assert config.strategy == "lce"
        assert config.capacity == 8
        assert config.policy is EvictionPolicy.LRU

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown on-path strategy"):
            OnPathConfig(strategy="mcd")

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            OnPathConfig(capacity=0)

    def test_make_store_bounded(self):
        store = OnPathConfig(capacity=3).make_store()
        assert store.capacity == 3


@pytest.fixture(scope="module")
def settings():
    return Settings.fast().with_(query_rate_per_day=6.0)


@pytest.fixture(scope="module")
def trace(settings):
    return make_trace(settings, seed=1)


class TestOnPathIntegration:
    def test_requires_queries(self, settings, trace):
        with pytest.raises(ValueError, match="with_queries"):
            run_once(trace, "hdr", settings, seed=1,
                     onpath=OnPathConfig())

    def test_soa_rejects_onpath(self, settings, trace):
        with pytest.raises(ValueError, match="soa backend"):
            run_once(trace, "hdr", settings, seed=1, backend="soa",
                     onpath=OnPathConfig())

    def test_default_run_unchanged_without_onpath(self, settings, trace):
        baseline = run_once(trace, "hdr", settings, seed=1,
                            with_queries=True)
        again = run_once(trace, "hdr", settings, seed=1, with_queries=True)
        assert baseline.same_as(again)

    def test_lce_and_lcd_move_query_metrics(self, settings, trace):
        """The query schedule is untouched (same issued count) and the
        on-path copies answer more queries locally; freshness may only
        shift via legitimate response-driven upgrades at designated
        caching nodes."""
        baseline = run_once(trace, "hdr", settings, seed=1,
                            with_queries=True)
        for strategy in ("lce", "lcd"):
            cached = run_once(trace, "hdr", settings, seed=1,
                              with_queries=True,
                              onpath=OnPathConfig(strategy=strategy))
            assert cached.queries_issued == baseline.queries_issued
            assert cached.query_answer_ratio >= baseline.query_answer_ratio
            assert abs(cached.freshness - baseline.freshness) < 0.05

    def test_runtime_gets_onpath_stores(self, settings, trace):
        from repro.core.scheme import build_simulation
        from repro.experiments.runner import choose_sources, make_catalog

        catalog = make_catalog(settings, choose_sources(trace, settings))
        runtime = build_simulation(
            trace, catalog, scheme="hdr",
            num_caching_nodes=settings.num_caching_nodes, seed=1,
            with_queries=True, onpath=OnPathConfig(capacity=2),
        )
        assert runtime.onpath_stores
        # ordinary nodes got bounded stores; caching nodes kept theirs
        for nid, store in runtime.onpath_stores.items():
            assert store.capacity == 2
            assert nid not in runtime.caching_nodes
