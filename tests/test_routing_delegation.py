"""Tests for delegation forwarding."""

import pytest

from repro.contacts.rates import RateTable
from repro.routing.delegation import DelegationForwarding
from repro.sim.messages import Message
from tests.conftest import build_network
from repro.mobility.trace import Contact, ContactTrace


def star_trace():
    """Node 0 meets 1, 2, 3 in turn; node 3 then meets the destination 4."""
    contacts = [
        Contact.make(0, 1, 10.0, 15.0),
        Contact.make(0, 2, 20.0, 25.0),
        Contact.make(0, 3, 30.0, 35.0),
        Contact.make(3, 4, 40.0, 45.0),
    ]
    return ContactTrace(contacts, node_ids=[0, 1, 2, 3, 4])


def wire(trace, rates):
    net = build_network(trace)
    agents = {
        nid: node.add_handler(DelegationForwarding(rates=rates))
        for nid, node in net.nodes.items()
    }
    net.start()
    return net, agents


class TestDelegation:
    def test_copies_climb_the_gradient(self):
        # qualities to destination 4: node0=0.1, node1=0.05, node2=0.2, node3=0.5
        rates = RateTable({(0, 4): 0.1, (1, 4): 0.05, (2, 4): 0.2, (3, 4): 0.5})
        net, agents = wire(star_trace(), rates)
        net.sim.run(until=5.0)
        agents[0].originate(Message(kind="data", src=0, dst=4, created_at=5.0))
        net.sim.run(until=100.0)
        # node 1 (worse than 0) never got a copy; 2 and 3 did; 3 delivered
        assert not agents[1].seen
        assert agents[2].seen
        assert len(agents[4].deliveries) == 1

    def test_threshold_ratchets_up(self):
        rates = RateTable({(0, 4): 0.1, (1, 4): 0.15, (2, 4): 0.12, (3, 4): 0.5})
        net, agents = wire(star_trace(), rates)
        net.sim.run(until=5.0)
        message = Message(kind="data", src=0, dst=4, created_at=5.0)
        agents[0].originate(message)
        net.sim.run(until=28.0)
        # after delegating to node 1 (0.15), node 2 (0.12) no longer qualifies
        assert agents[1].seen
        assert not agents[2].seen
        assert message.payload["dg_threshold"] == pytest.approx(0.15)

    def test_destination_always_qualifies(self):
        rates = RateTable({(0, 1): 100.0})  # nothing known about dst rates
        trace = ContactTrace([Contact.make(0, 4, 10.0, 15.0)], node_ids=[0, 4])
        net, agents = wire(trace, rates)
        net.sim.run(until=5.0)
        agents[0].originate(Message(kind="data", src=0, dst=4, created_at=5.0))
        net.sim.run(until=100.0)
        assert len(agents[4].deliveries) == 1

    def test_online_estimator_preferred_over_table(self):
        from repro.contacts.rates import ContactRateEstimator

        trace = ContactTrace(
            [
                Contact.make(1, 4, 5.0, 6.0),     # node 1 knows node 4
                Contact.make(0, 1, 10.0, 15.0),
                Contact.make(1, 4, 20.0, 25.0),
            ],
            node_ids=[0, 1, 4],
        )
        net = build_network(trace)
        agents = {}
        for nid, node in net.nodes.items():
            node.add_handler(ContactRateEstimator())
            agents[nid] = node.add_handler(DelegationForwarding())
        net.start()
        net.sim.run(until=8.0)
        agents[0].originate(Message(kind="data", src=0, dst=4, created_at=8.0))
        net.sim.run(until=100.0)
        # node 1's online estimator says it meets 4; node 0 knows nothing
        assert len(agents[4].deliveries) == 1

    def test_no_knowledge_no_spread(self):
        net, agents = wire(star_trace(), rates=None)
        net.sim.run(until=5.0)
        agents[0].originate(Message(kind="data", src=0, dst=4, created_at=5.0))
        net.sim.run(until=38.0)
        # zero quality everywhere: nothing beats the threshold, no relays
        assert not agents[1].seen and not agents[2].seen and not agents[3].seen
