"""Tests for incremental freshness accounting and its equivalence to the
brute-force recompute, including a randomized hypothesis property test."""

import math

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.caching.items import CacheEntry, DataCatalog
from repro.core import accounting
from repro.core.accounting import FreshnessAccountant
from repro.core.scheme import build_simulation
from repro.experiments.config import DAY, HOUR, Settings
from repro.experiments.runner import make_catalog, make_trace

NODES = [0, 1, 2, 3]
LIFETIME = 2.0 * HOUR


def make_test_catalog(num_items: int = 3) -> DataCatalog:
    return DataCatalog.uniform(
        num_items=num_items,
        sources=[99],
        refresh_interval=HOUR,
        lifetime=LIFETIME,
    )


class _Item:
    """Stand-in for the DataItem arg of version_published."""

    def __init__(self, item_id: int) -> None:
        self.item_id = item_id


class BruteModel:
    """Straight-line reference model of the accountant's three counters."""

    def __init__(self, catalog: DataCatalog, nodes) -> None:
        self.lifetimes = {item.item_id: item.lifetime for item in catalog}
        self.online = {n: True for n in nodes}
        self.current = {i: 0 for i in self.lifetimes}
        self.slots: dict[tuple[int, int], tuple[int, float]] = {}

    def snapshot(self, now: float) -> tuple[int, int, int]:
        fresh = valid = 0
        for (node, item_id), (version, version_time) in self.slots.items():
            if not self.online[node]:
                continue
            if now < version_time + self.lifetimes[item_id]:
                valid += 1
            if version == self.current[item_id] and version > 0:
                fresh += 1
        total = sum(self.online.values()) * len(self.lifetimes)
        return fresh, valid, total


# One randomized op: (kind, node, item, extra); time advances between ops.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["publish", "put", "put_stale", "remove", "toggle"]),
        st.sampled_from(NODES),
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=3.0 * HOUR),
    ),
    max_size=60,
)


class TestAccountantProperty:
    @given(ops=_ops)
    @hsettings(max_examples=150, deadline=None)
    def test_matches_brute_force_model(self, ops):
        catalog = make_test_catalog(3)
        acct = FreshnessAccountant(catalog, NODES)
        model = BruteModel(catalog, NODES)
        published: dict[int, list[tuple[int, float]]] = {i: [] for i in range(3)}
        now = 0.0
        for kind, node, item_id, delta in ops:
            now += delta
            if kind == "publish":
                version = len(published[item_id]) + 1
                published[item_id].append((version, now))
                acct.version_published(_Item(item_id), version, now)
                model.current[item_id] = version
            elif kind in ("put", "put_stale"):
                history = published[item_id]
                if not history:
                    continue
                version, version_time = (
                    history[-1] if kind == "put" else history[0]
                )
                entry = CacheEntry(
                    item_id=item_id, version=version,
                    version_time=version_time, cached_at=now,
                )
                acct.entry_changed(node, item_id, entry, now)
                model.slots[(node, item_id)] = (version, version_time)
            elif kind == "remove":
                acct.entry_changed(node, item_id, None, now)
                model.slots.pop((node, item_id), None)
            else:  # toggle online state
                state = not model.online[node]
                model.online[node] = state
                acct.online_changed(node, state, now)
            assert acct.snapshot(now) == model.snapshot(now)
        # Counters stay consistent as everything expires.
        later = now + 2 * LIFETIME
        assert acct.snapshot(later) == model.snapshot(later)


class TestAccountantUnit:
    def test_seed_before_publish_becomes_fresh(self):
        # Warm starts put version 1 in stores before the source publishes
        # it at t=0; the publish rescan must pick the holders up.
        catalog = make_test_catalog(1)
        acct = FreshnessAccountant(catalog, NODES)
        entry = CacheEntry(item_id=0, version=1, version_time=0.0, cached_at=0.0)
        acct.entry_changed(0, 0, entry, 0.0)
        assert acct.snapshot(0.0) == (0, 1, len(NODES))  # not published yet
        acct.version_published(_Item(0), 1, 0.0)
        assert acct.snapshot(0.0) == (1, 1, len(NODES))

    def test_lazy_expiry_drain(self):
        catalog = make_test_catalog(1)
        acct = FreshnessAccountant(catalog, [0])
        acct.version_published(_Item(0), 1, 0.0)
        acct.entry_changed(
            0, 0, CacheEntry(item_id=0, version=1, version_time=0.0, cached_at=0.0), 0.0
        )
        assert acct.snapshot(LIFETIME - 1.0) == (1, 1, 1)
        # Fresh is independent of validity; expiry only drops `valid`.
        assert acct.snapshot(LIFETIME) == (1, 0, 1)

    def test_superseded_expiry_entry_is_ignored(self):
        catalog = make_test_catalog(1)
        acct = FreshnessAccountant(catalog, [0])
        acct.version_published(_Item(0), 1, 0.0)
        acct.entry_changed(
            0, 0, CacheEntry(item_id=0, version=1, version_time=0.0, cached_at=0.0), 0.0
        )
        acct.version_published(_Item(0), 2, HOUR)
        acct.entry_changed(
            0, 0, CacheEntry(item_id=0, version=2, version_time=HOUR, cached_at=HOUR), HOUR
        )
        # Version 1's heap entry fires at t=LIFETIME but must not
        # invalidate the slot now holding version 2.
        assert acct.snapshot(LIFETIME + 1.0) == (1, 1, 1)

    def test_offline_node_leaves_all_counters(self):
        catalog = make_test_catalog(2)
        acct = FreshnessAccountant(catalog, NODES)
        acct.version_published(_Item(0), 1, 0.0)
        acct.entry_changed(
            1, 0, CacheEntry(item_id=0, version=1, version_time=0.0, cached_at=0.0), 0.0
        )
        assert acct.snapshot(1.0) == (1, 1, len(NODES) * 2)
        acct.online_changed(1, False, 2.0)
        assert acct.snapshot(2.0) == (0, 0, (len(NODES) - 1) * 2)
        acct.online_changed(1, True, 3.0)
        assert acct.snapshot(3.0) == (1, 1, len(NODES) * 2)

    def test_non_caching_node_churn_is_ignored(self):
        catalog = make_test_catalog(1)
        acct = FreshnessAccountant(catalog, [0, 1])
        acct.online_changed(77, False, 1.0)  # not a caching node
        assert acct.snapshot(1.0) == (0, 0, 2)


def _runtime_for(scheme: str, settings: Settings, seed: int = 1):
    trace = make_trace(settings, seed)
    catalog = make_catalog(settings, [sorted(trace.node_ids)[0]])
    return build_simulation(
        trace, catalog, scheme=scheme,
        num_caching_nodes=settings.num_caching_nodes, seed=seed,
        refresh_jitter=settings.refresh_jitter,
    )


@pytest.mark.parametrize("scheme", ["hdr", "flooding", "source", "invalidate"])
def test_accountant_matches_brute_force_in_simulation(scheme):
    settings = Settings.fast().with_(duration=2 * DAY)
    runtime = _runtime_for(scheme, settings)
    checks = []

    def check():
        checks.append(runtime.verify_freshness_accounting())

    for k in range(1, 13):
        runtime.sim.schedule_at(k * settings.duration / 13, check)
    runtime.run(until=settings.duration)
    runtime.verify_freshness_accounting()
    assert len(checks) == 12


def test_accountant_matches_brute_force_under_churn():
    from repro.core.maintenance import ChurnProcess

    settings = Settings.fast().with_(duration=2 * DAY)
    runtime = _runtime_for("hdr", settings)
    churn = ChurnProcess(
        runtime,
        leave_rate=1.0 / (4 * HOUR),
        mean_downtime=2 * HOUR,
        rng=np.random.default_rng(7),
        until=settings.duration,
        managers=None,  # tree scheme: exercise hierarchy repair too
    )
    churn.install()

    def check():
        runtime.verify_freshness_accounting()

    for k in range(1, 25):
        runtime.sim.schedule_at(k * settings.duration / 25, check)
    runtime.run(until=settings.duration)
    assert churn.num_departures > 0  # churn actually happened
    runtime.verify_freshness_accounting()


def test_optimised_and_legacy_paths_produce_identical_metrics():
    from repro.experiments.bench import legacy_mode
    from repro.experiments.runner import run_once

    settings = Settings.fast().with_(duration=2 * DAY)
    results = {}
    for mode in ("optimised", "legacy"):
        per_scheme = {}
        trace = make_trace(settings, 1)
        for scheme in ("hdr", "flooding", "invalidate"):
            if mode == "legacy":
                with legacy_mode():
                    per_scheme[scheme] = run_once(trace, scheme, settings, seed=1)
            else:
                per_scheme[scheme] = run_once(trace, scheme, settings, seed=1)
        results[mode] = per_scheme
    for scheme in results["optimised"]:
        assert results["optimised"][scheme].same_as(results["legacy"][scheme]), scheme


def test_incremental_flag_restored_by_legacy_mode():
    from repro.experiments.bench import legacy_mode
    from repro.mobility import synthetic, trace as trace_mod

    assert accounting.INCREMENTAL_BOOKKEEPING
    with legacy_mode():
        assert not accounting.INCREMENTAL_BOOKKEEPING
        assert not synthetic.VECTORISED_GENERATION
        assert not trace_mod.FAST_SORT
    assert accounting.INCREMENTAL_BOOKKEEPING
    assert synthetic.VECTORISED_GENERATION
    assert trace_mod.FAST_SORT
