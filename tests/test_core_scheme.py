"""Tests for scheme configuration and simulation wiring."""

import numpy as np
import pytest

from repro.caching.items import DataCatalog
from repro.core.scheme import (
    SCHEMES,
    SchemeConfig,
    build_simulation,
    scheme_variant,
)
from repro.mobility.calibration import get_profile


@pytest.fixture(scope="module")
def small_trace():
    return get_profile("small").generate(np.random.default_rng(11), duration=86400.0)


@pytest.fixture(scope="module")
def catalog(small_trace):
    source = small_trace.node_ids[0]
    return DataCatalog.uniform(
        num_items=3, sources=[source], refresh_interval=4 * 3600.0
    )


class TestSchemeConfig:
    def test_known_schemes(self):
        assert set(SCHEMES) == {
            "hdr", "flat", "random", "source", "flooding", "invalidate", "none"
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            SchemeConfig(name="x", structure="weird")
        with pytest.raises(ValueError):
            SchemeConfig(name="x", structure="tree", assignment="weird")
        with pytest.raises(ValueError):
            SchemeConfig(name="x", structure="tree", max_relays=-1)
        with pytest.raises(ValueError):
            SchemeConfig(name="x", structure="tree", relay_budget=-1)

    def test_effective_relay_budget_default(self):
        config = SchemeConfig(name="x", structure="tree", fanout=3, max_relays=5)
        assert config.effective_relay_budget == 15
        explicit = SchemeConfig(name="x", structure="tree", relay_budget=7)
        assert explicit.effective_relay_budget == 7

    def test_scheme_variant_overrides(self):
        variant = scheme_variant("hdr", max_relays=2)
        assert variant.max_relays == 2
        assert variant.structure == "tree"
        assert "max_relays=2" in variant.name

    def test_scheme_variant_custom_name(self):
        assert scheme_variant("hdr", max_relays=2, name="x").name == "x"

    def test_source_scheme_has_no_relays(self):
        assert SCHEMES["source"].max_relays == 0
        assert SCHEMES["source"].structure == "star"


class TestBuildSimulation:
    def test_wires_trees_for_every_item(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        assert set(runtime.trees) == {0, 1, 2}
        for item in catalog:
            tree = runtime.trees[item.item_id]
            assert tree.root == item.source
            assert tree.members == set(runtime.caching_nodes)
            tree.validate()

    def test_star_scheme_builds_depth_one(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="flat",
                                   num_caching_nodes=5, seed=1)
        assert all(t.max_depth == 1 for t in runtime.trees.values())

    def test_flooding_scheme_has_no_trees(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="flooding",
                                   num_caching_nodes=5, seed=1)
        assert runtime.trees == {}
        assert runtime.plans == {}

    def test_plans_cover_every_edge(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        for item_id, tree in runtime.trees.items():
            for parent, child in tree.edges():
                assert (item_id, parent, child) in runtime.plans

    def test_caching_nodes_exclude_sources(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        assert not set(runtime.caching_nodes) & set(runtime.sources)
        assert len(runtime.caching_nodes) == 5

    def test_explicit_caching_nodes(self, small_trace, catalog):
        source = catalog.get(0).source
        picked = [n for n in small_trace.node_ids if n != source][:4]
        runtime = build_simulation(small_trace, catalog, scheme="hdr",
                                   caching_nodes=picked, seed=1)
        assert runtime.caching_nodes == sorted(picked)

    def test_explicit_caching_nodes_overlapping_source_rejected(
        self, small_trace, catalog
    ):
        source = catalog.get(0).source
        with pytest.raises(ValueError, match="both sources and caching"):
            build_simulation(small_trace, catalog, scheme="hdr",
                             caching_nodes=[source], seed=1)

    def test_unknown_source_rejected(self, small_trace):
        bad = DataCatalog.uniform(1, sources=[9999], refresh_interval=3600.0)
        with pytest.raises(ValueError, match="not in the trace"):
            build_simulation(small_trace, bad, scheme="hdr", num_caching_nodes=3)

    def test_seeding_gives_version_one_everywhere(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        fresh, valid, total = runtime.freshness_snapshot()
        assert total == 5 * 3
        assert valid == total

    def test_none_scheme_only_expires(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="none",
                                   num_caching_nodes=5, seed=1)
        runtime.run(until=86400.0)
        fresh, valid, total = runtime.freshness_snapshot()
        assert fresh == 0  # versions moved on, nobody was refreshed
        assert runtime.refresh_overhead() == 0

    def test_query_plane_optional(self, small_trace, catalog):
        without = build_simulation(small_trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        assert without.query_managers == {}
        with_q = build_simulation(small_trace, catalog, scheme="hdr",
                                  num_caching_nodes=5, seed=1, with_queries=True)
        assert set(with_q.query_managers) == set(small_trace.node_ids)

    def test_freshness_probe_records(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="flooding",
                                   num_caching_nodes=5, seed=1)
        runtime.install_freshness_probe(interval=3600.0, until=86400.0)
        runtime.run(until=86400.0)
        series = runtime.stats.series("probe.freshness")
        assert len(series) == 24
        assert all(0.0 <= v <= 1.0 for v in series.values)

    def test_probe_interval_validated(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        with pytest.raises(ValueError):
            runtime.install_freshness_probe(interval=0.0, until=100.0)

    def test_refresh_overhead_counts_kinds(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        runtime.run(until=86400.0)
        expected = (
            runtime.stats.counter_value("net.transfers.refresh")
            + runtime.stats.counter_value("net.transfers.refresh_relay")
        )
        assert runtime.refresh_overhead() == expected
        assert expected > 0

    def test_update_log_grows(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        runtime.run(until=86400.0)
        seeds = [u for u in runtime.update_log if u.via == "seed"]
        real = [u for u in runtime.update_log if u.via != "seed"]
        assert len(seeds) == 15
        assert len(real) > 0
        assert all(u.delay >= 0 for u in real)

    def test_store_capacity_bounds_every_store(self, small_trace, catalog):
        from repro.caching.store import EvictionPolicy

        runtime = build_simulation(
            small_trace, catalog, scheme="hdr", num_caching_nodes=5, seed=1,
            store_capacity=2, eviction_policy=EvictionPolicy.FIFO,
        )
        runtime.run(until=86400.0)
        for store in runtime.stores.values():
            assert len(store) <= 2
            assert store.policy is EvictionPolicy.FIFO
        # 3 items seeded into capacity-2 stores: evictions must have happened
        assert sum(store.evictions for store in runtime.stores.values()) > 0

    def test_poisson_refresh_mode(self, small_trace, catalog):
        runtime = build_simulation(small_trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1,
                                   refresh_mode="poisson")
        runtime.run(until=86400.0)
        assert runtime.history.num_versions(0) >= 1
