"""Tests for popularity-budgeted and geographic-spread cache placement."""

import pytest

from repro.caching.items import DataCatalog, DataItem
from repro.caching.placement import (
    GeographicPlacement,
    PlacementPolicy,
    PopularityPlacement,
)
from repro.contacts.rates import RateTable


def make_catalog(num_items=4):
    return DataCatalog([
        DataItem(item_id=i, source=99, refresh_interval=100.0, lifetime=1e6)
        for i in range(num_items)
    ])


def clustered_rates() -> RateTable:
    """Two tight clusters {0,1,2} and {3,4,5} with a weak bridge."""
    table = RateTable()
    for cluster in ((0, 1, 2), (3, 4, 5)):
        for i, a in enumerate(cluster):
            for b in cluster[i + 1:]:
                table.set(a, b, 5.0)
    table.set(2, 3, 0.01)
    return table


class TestBasePolicy:
    def test_hooks_default_to_none(self):
        policy = PlacementPolicy()
        assert policy.select_nodes(RateTable(), 1, set()) is None
        assert policy.assign(make_catalog(), [0], RateTable()) is None


class TestPopularityPlacement:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PopularityPlacement(s=-0.1)
        with pytest.raises(ValueError):
            PopularityPlacement(budget_fraction=0.0)
        with pytest.raises(ValueError):
            PopularityPlacement(budget_fraction=1.5)

    def test_replica_counts_sum_to_budget(self):
        policy = PopularityPlacement(s=1.0, budget_fraction=0.5)
        counts = policy.replica_counts(4, 6)
        assert sum(counts) == round(4 * 6 * 0.5)
        assert counts == sorted(counts, reverse=True)

    def test_replica_counts_floor_and_ceiling(self):
        counts = PopularityPlacement(s=2.0, budget_fraction=0.25).replica_counts(8, 4)
        assert all(1 <= c <= 4 for c in counts)

    def test_full_budget_is_full_replication(self):
        counts = PopularityPlacement(budget_fraction=1.0).replica_counts(3, 5)
        assert counts == [5, 5, 5]

    def test_assign_covers_every_item(self):
        policy = PopularityPlacement(s=1.0, budget_fraction=0.5)
        catalog = make_catalog(4)
        nodes = [0, 1, 2, 3, 4, 5]
        assignment = policy.assign(catalog, nodes, clustered_rates())
        assert set(assignment) == {0, 1, 2, 3}
        counts = policy.replica_counts(4, 6)
        for item_id, members in assignment.items():
            assert len(members) == counts[item_id]
            assert set(members) <= set(nodes)
            assert list(members) == sorted(members)

    def test_assign_deterministic(self):
        policy = PopularityPlacement()
        catalog = make_catalog(4)
        rates = clustered_rates()
        first = policy.assign(catalog, [0, 1, 2, 3, 4, 5], rates)
        second = policy.assign(catalog, [0, 1, 2, 3, 4, 5], rates)
        assert first == second


class TestGeographicPlacement:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GeographicPlacement(spread_quantile=0.0)
        with pytest.raises(ValueError):
            GeographicPlacement(spread_quantile=1.5)

    def test_spreads_across_clusters(self):
        picked = GeographicPlacement(spread_quantile=0.1).select_nodes(
            clustered_rates(), k=2, exclude=set()
        )
        assert len(picked) == 2
        # one node from each tight cluster, never two clustermates
        assert len({nid // 3 for nid in picked}) == 2

    def test_relaxes_when_unsatisfiable(self):
        # quota larger than what the constraint admits: fills by centrality
        picked = GeographicPlacement(spread_quantile=0.1).select_nodes(
            clustered_rates(), k=5, exclude=set()
        )
        assert len(picked) == 5
        assert picked == sorted(picked)

    def test_exclude_respected(self):
        picked = GeographicPlacement().select_nodes(
            clustered_rates(), k=2, exclude={0, 1, 2}
        )
        assert set(picked) <= {3, 4, 5}

    def test_too_few_candidates(self):
        with pytest.raises(ValueError):
            GeographicPlacement().select_nodes(clustered_rates(), k=10,
                                               exclude=set())


class TestPlacementIntegration:
    def test_build_simulation_uses_assignment(self):
        from repro.core.scheme import build_simulation
        from repro.experiments.config import Settings
        from repro.experiments.runner import (
            choose_sources,
            make_catalog as settings_catalog,
            make_trace,
        )

        settings = Settings.fast()
        trace = make_trace(settings, seed=1)
        catalog = settings_catalog(settings, choose_sources(trace, settings))
        runtime = build_simulation(
            trace, catalog, scheme="hdr",
            num_caching_nodes=settings.num_caching_nodes, seed=1,
            placement=PopularityPlacement(s=1.0, budget_fraction=0.5),
        )
        assert runtime.assignment is not None
        counts = PopularityPlacement(s=1.0, budget_fraction=0.5).replica_counts(
            len(catalog), len(runtime.caching_nodes)
        )
        for rank, item_id in enumerate(sorted(runtime.assignment)):
            assert len(runtime.assignment[item_id]) == counts[rank]
        # refresh trees only span the assigned members
        for item_id, tree in runtime.trees.items():
            assert set(tree.members) <= set(runtime.assignment[item_id])

    def test_geographic_replaces_ncl_selection(self):
        from repro.core.scheme import build_simulation
        from repro.experiments.config import Settings
        from repro.experiments.runner import (
            choose_sources,
            make_catalog as settings_catalog,
            make_trace,
        )

        settings = Settings.fast()
        trace = make_trace(settings, seed=1)
        catalog = settings_catalog(settings, choose_sources(trace, settings))
        baseline = build_simulation(
            trace, catalog, scheme="hdr",
            num_caching_nodes=settings.num_caching_nodes, seed=1,
        )
        spread = build_simulation(
            trace, catalog, scheme="hdr",
            num_caching_nodes=settings.num_caching_nodes, seed=1,
            placement=GeographicPlacement(spread_quantile=0.5),
        )
        assert len(spread.caching_nodes) == len(baseline.caching_nodes)
        assert spread.assignment is None
