"""Tests for named RNG substreams."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_returns_same_generator(self):
        rngs = RngRegistry(seed=1)
        assert rngs.get("a") is rngs.get("a")

    def test_different_names_are_independent_streams(self):
        rngs = RngRegistry(seed=1)
        a = rngs.get("a").random(100)
        b = rngs.get("b").random(100)
        assert not (a == b).all()

    def test_reproducible_across_registries(self):
        first = RngRegistry(seed=7).get("trace").random(10)
        second = RngRegistry(seed=7).get("trace").random(10)
        assert (first == second).all()

    def test_different_seeds_differ(self):
        first = RngRegistry(seed=1).get("x").random(10)
        second = RngRegistry(seed=2).get("x").random(10)
        assert not (first == second).all()

    def test_adding_stream_does_not_perturb_existing(self):
        """Drawing from a new stream must not change another stream's draws."""
        plain = RngRegistry(seed=3)
        first_half = plain.get("main").random(5)

        interleaved = RngRegistry(seed=3)
        interleaved.get("main")
        interleaved.get("other").random(100)  # new consumer appears
        also_first_half = interleaved.get("main").random(5)
        assert (first_half == also_first_half).all()

    def test_contains(self):
        rngs = RngRegistry()
        assert "a" not in rngs
        rngs.get("a")
        assert "a" in rngs

    def test_spawn_derives_child(self):
        parent = RngRegistry(seed=5)
        child_a = parent.spawn("rep1").get("x").random(5)
        child_b = parent.spawn("rep2").get("x").random(5)
        assert not (child_a == child_b).all()
        again = RngRegistry(seed=5).spawn("rep1").get("x").random(5)
        assert (child_a == again).all()

    def test_seed_property(self):
        assert RngRegistry(seed=9).seed == 9
