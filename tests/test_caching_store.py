"""Tests for the cache store and eviction policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching.items import CacheEntry, DataItem
from repro.caching.store import CacheStore, EvictionPolicy


def entry(item_id=0, version=1, version_time=0.0, cached_at=0.0):
    return CacheEntry(
        item_id=item_id, version=version, version_time=version_time, cached_at=cached_at
    )


class TestPut:
    def test_insert_and_lookup(self):
        store = CacheStore()
        assert store.put(entry(), now=0.0)
        found = store.lookup(0, now=5.0)
        assert found is not None
        assert found.access_count == 1
        assert found.last_access == 5.0

    def test_peek_does_not_count_access(self):
        store = CacheStore()
        store.put(entry(), now=0.0)
        store.peek(0)
        assert store.peek(0).access_count == 0

    def test_newer_version_replaces(self):
        store = CacheStore()
        store.put(entry(version=1), now=0.0)
        assert store.put(entry(version=2, version_time=10.0, cached_at=10.0), now=10.0)
        assert store.peek(0).version == 2

    def test_stale_version_rejected(self):
        store = CacheStore()
        store.put(entry(version=2), now=0.0)
        assert not store.put(entry(version=2), now=1.0)
        assert not store.put(entry(version=1), now=1.0)

    def test_refresh_preserves_access_stats(self):
        store = CacheStore()
        store.put(entry(version=1), now=0.0)
        store.lookup(0, now=1.0)
        store.lookup(0, now=2.0)
        store.put(entry(version=2), now=3.0)
        assert store.peek(0).access_count == 2
        assert store.peek(0).last_access == 2.0

    def test_contains_and_ids(self):
        store = CacheStore()
        store.put(entry(item_id=3), now=0.0)
        store.put(entry(item_id=1), now=0.0)
        assert 3 in store
        assert store.item_ids() == [1, 3]
        assert len(store) == 2


class TestEviction:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            CacheStore(capacity=0)

    def test_lru_evicts_least_recently_used(self):
        store = CacheStore(capacity=2, policy=EvictionPolicy.LRU)
        store.put(entry(item_id=0), now=0.0)
        store.put(entry(item_id=1), now=0.0)
        store.lookup(0, now=5.0)  # 0 is now fresher than 1
        store.put(entry(item_id=2), now=6.0)
        assert 1 not in store
        assert 0 in store and 2 in store
        assert store.evictions == 1

    def test_fifo_evicts_oldest_insert(self):
        store = CacheStore(capacity=2, policy=EvictionPolicy.FIFO)
        store.put(entry(item_id=0, cached_at=0.0), now=0.0)
        store.put(entry(item_id=1, cached_at=1.0), now=1.0)
        store.lookup(0, now=5.0)  # access does not matter for FIFO
        store.put(entry(item_id=2, cached_at=6.0), now=6.0)
        assert 0 not in store

    def test_lfu_evicts_least_frequent(self):
        store = CacheStore(capacity=2, policy=EvictionPolicy.LFU)
        store.put(entry(item_id=0), now=0.0)
        store.put(entry(item_id=1), now=0.0)
        store.lookup(1, now=1.0)
        store.put(entry(item_id=2), now=2.0)
        assert 0 not in store

    def test_version_upgrade_never_evicts(self):
        store = CacheStore(capacity=2)
        store.put(entry(item_id=0), now=0.0)
        store.put(entry(item_id=1), now=0.0)
        store.put(entry(item_id=0, version=2), now=1.0)
        assert len(store) == 2
        assert store.evictions == 0


class TestDropExpired:
    def test_drops_only_expired(self):
        data_item = DataItem(item_id=0, source=9, refresh_interval=10.0, lifetime=100.0)
        other = DataItem(item_id=1, source=9, refresh_interval=10.0, lifetime=1000.0)
        store = CacheStore()
        store.put(entry(item_id=0, version_time=0.0), now=0.0)
        store.put(entry(item_id=1, version_time=0.0), now=0.0)
        dropped = store.drop_expired(now=150.0, items={0: data_item, 1: other})
        assert dropped == 1
        assert 0 not in store
        assert 1 in store


class TestStoreProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),   # item id
                st.integers(min_value=1, max_value=10),  # version
            ),
            max_size=60,
        ),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded_and_versions_monotone(self, ops, capacity):
        store = CacheStore(capacity=capacity)
        highest: dict[int, int] = {}
        for tick, (item_id, version) in enumerate(ops):
            store.put(
                entry(item_id=item_id, version=version, cached_at=float(tick)),
                now=float(tick),
            )
            current = store.peek(item_id)
            if current is not None:
                previous = highest.get(item_id, 0)
                if previous:
                    assert current.version >= min(previous, version)
                highest[item_id] = max(previous, current.version)
            assert len(store) <= capacity


class TestChangeListener:
    """Every mutation path must notify the change listener with the exact
    (item_id, old, new, now) shape the freshness accountant keys off."""

    def recording(self, **kwargs):
        store = CacheStore(**kwargs)
        events = []
        store.change_listener = lambda *args: events.append(args)
        return store, events

    def test_insert(self):
        store, events = self.recording()
        new = entry()
        store.put(new, now=1.0)
        assert events == [(0, None, new, 1.0)]

    def test_replace_reports_old_and_new(self):
        store, events = self.recording()
        old, new = entry(version=1), entry(version=2, version_time=5.0, cached_at=5.0)
        store.put(old, now=0.0)
        store.put(new, now=5.0)
        assert events[1] == (0, old, new, 5.0)

    def test_stale_put_is_silent(self):
        store, events = self.recording()
        store.put(entry(version=2), now=0.0)
        store.put(entry(version=1), now=1.0)
        assert len(events) == 1

    def test_remove(self):
        import math

        store, events = self.recording()
        old = entry()
        store.put(old, now=0.0)
        store.remove(0)
        item_id, before, after, now = events[1]
        assert (item_id, before, after) == (0, old, None)
        assert math.isnan(now)  # removal time is not meaningful
        store.remove(0)  # already gone: no event
        assert len(events) == 2

    def test_drop_expired(self):
        store, events = self.recording()
        item = DataItem(item_id=0, source=9, refresh_interval=10.0, lifetime=20.0)
        old = entry(version=1, version_time=0.0)
        store.put(old, now=0.0)
        store.drop_expired(now=25.0, items={0: item})
        assert events[1] == (0, old, None, 25.0)

    def test_evict(self):
        store, events = self.recording(capacity=1)
        victim = entry(item_id=0)
        store.put(victim, now=0.0)
        store.put(entry(item_id=1), now=1.0)
        assert events[1] == (0, victim, None, 1.0)
        assert events[2][:2] == (1, None)
