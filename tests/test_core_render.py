"""Tests for the tree renderer and the runtime description."""

import numpy as np

from repro.caching.items import DataCatalog
from repro.core.hierarchy import RefreshTree
from repro.core.scheme import build_simulation
from repro.mobility.calibration import get_profile


class TestRender:
    def test_root_only(self):
        assert RefreshTree(root=7).render() == "7"

    def test_structure_and_indentation(self):
        tree = RefreshTree(root=0)
        tree.attach(1, 0)
        tree.attach(2, 0)
        tree.attach(3, 1)
        text = tree.render()
        lines = text.splitlines()
        assert lines[0] == "0"
        assert lines[1] == "|- 1"
        assert lines[2] == "|  `- 3"
        assert lines[3] == "`- 2"

    def test_every_node_rendered_once(self):
        tree = RefreshTree(root=0)
        for child, parent in [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2)]:
            tree.attach(child, parent)
        text = tree.render()
        for node in tree.nodes:
            assert sum(
                1 for line in text.splitlines() if line.endswith(str(node))
            ) == 1

    def test_labels(self):
        tree = RefreshTree(root=0)
        tree.attach(1, 0)
        text = tree.render(label={0: "source", 1: "cache-1"})
        assert "source" in text
        assert "cache-1" in text


class TestDescribe:
    def test_describe_mentions_everything(self):
        trace = get_profile("small").generate(
            np.random.default_rng(7), duration=43200.0
        )
        catalog = DataCatalog.uniform(
            2, sources=[trace.node_ids[0]], refresh_interval=4 * 3600.0
        )
        runtime = build_simulation(trace, catalog, scheme="hdr",
                                   num_caching_nodes=4, seed=1)
        text = runtime.describe()
        assert "scheme 'hdr'" in text
        assert "caching:" in text
        assert "item 0" in text
        assert "item 1" in text
        assert "tree depth" in text

    def test_describe_flooding_has_no_trees(self):
        trace = get_profile("small").generate(
            np.random.default_rng(7), duration=43200.0
        )
        catalog = DataCatalog.uniform(
            1, sources=[trace.node_ids[0]], refresh_interval=4 * 3600.0
        )
        runtime = build_simulation(trace, catalog, scheme="flooding",
                                   num_caching_nodes=4, seed=1)
        text = runtime.describe()
        assert "flood" in text
        assert "item 0: tree" not in text
