"""Markdown link checker for README and docs/.

Every relative link target must exist in the repository; external
(``http``/``https``/``mailto``) links and intra-page anchors are
skipped.  Fenced code blocks are stripped first so shell snippets like
``[0, 5]`` never register as links.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

CHECKED = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md")),
    key=lambda p: p.name,
)

LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
INLINE_CODE = re.compile(r"`[^`]*`")


def links_of(path):
    text = INLINE_CODE.sub("", FENCE.sub("", path.read_text(encoding="utf-8")))
    return LINK.findall(text)


@pytest.mark.parametrize("path", CHECKED, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    broken = []
    for target in links_of(path):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name}: broken relative links {broken}"


def test_readme_and_docs_are_checked():
    names = {p.name for p in CHECKED}
    assert "README.md" in names
    for doc in ("MODEL.md", "ARCHITECTURE.md", "PERFORMANCE.md",
                "OBSERVABILITY.md", "ROBUSTNESS.md", "PROTOCOL.md"):
        assert doc in names, f"docs/{doc} missing from the link sweep"
