"""Tests for metrics, aggregation and table formatting."""

import math

import pytest

from repro.analysis.aggregate import Summary, summarize
from repro.analysis.metrics import judge_queries, refresh_outcomes
from repro.analysis.tables import format_series, format_table
from repro.caching.items import DataCatalog, DataItem, VersionHistory
from repro.caching.query import QueryRecord
from repro.core.refresh import RefreshUpdate


def make_history() -> tuple[DataCatalog, VersionHistory]:
    catalog = DataCatalog(
        [DataItem(item_id=0, source=9, refresh_interval=100.0, lifetime=200.0)]
    )
    history = VersionHistory()
    history.record(0, 1, 0.0)
    history.record(0, 2, 100.0)
    history.record(0, 3, 200.0)
    return catalog, history


class TestJudgeQueries:
    def record(self, answered_at=None, version=None, version_time=None):
        record = QueryRecord(query_id=1, requester=5, item_id=0, issued_at=10.0)
        if answered_at is not None:
            record.answered_at = answered_at
            record.version = version
            record.version_time = version_time
            record.served_by = 7
        return record

    def test_fresh_and_valid(self):
        catalog, history = make_history()
        outcomes = judge_queries(
            [self.record(answered_at=50.0, version=1, version_time=0.0)],
            history, catalog,
        )
        assert outcomes.answered == 1
        assert outcomes.fresh == 1
        assert outcomes.valid == 1
        assert outcomes.mean_delay == 40.0

    def test_stale_but_unexpired(self):
        catalog, history = make_history()
        # version 1 served at t=150: version 2 exists, but lifetime 200 keeps it valid
        outcomes = judge_queries(
            [self.record(answered_at=150.0, version=1, version_time=0.0)],
            history, catalog,
        )
        assert outcomes.fresh == 0
        assert outcomes.valid == 1

    def test_expired(self):
        catalog, history = make_history()
        outcomes = judge_queries(
            [self.record(answered_at=250.0, version=1, version_time=0.0)],
            history, catalog,
        )
        assert outcomes.fresh == 0
        assert outcomes.valid == 0

    def test_unanswered(self):
        catalog, history = make_history()
        outcomes = judge_queries([self.record()], history, catalog)
        assert outcomes.issued == 1
        assert outcomes.answered == 0
        assert math.isnan(outcomes.answer_ratio) or outcomes.answer_ratio == 0.0
        assert math.isnan(outcomes.fresh_ratio)

    def test_end_to_end_validity_counts_unanswered(self):
        catalog, history = make_history()
        outcomes = judge_queries(
            [
                self.record(),
                self.record(answered_at=50.0, version=1, version_time=0.0),
            ],
            history, catalog,
        )
        assert outcomes.end_to_end_validity == 0.5

    def test_empty(self):
        catalog, history = make_history()
        outcomes = judge_queries([], history, catalog)
        assert math.isnan(outcomes.answer_ratio)


class TestRefreshOutcomes:
    def update(self, node, version, at):
        return RefreshUpdate(
            item_id=0, node=node, version=version,
            version_time=(version - 1) * 100.0, updated_at=at, via="direct",
        )

    def test_on_time_and_late(self):
        catalog, history = make_history()
        log = [
            self.update(node=1, version=2, at=150.0),   # before v3 at 200: on time
            self.update(node=2, version=2, at=250.0),   # after v3: late
        ]
        outcomes = refresh_outcomes(
            log, history, catalog, caching_nodes=[1, 2], horizon=400.0, messages=10.0
        )
        # scoreable: v2 and v3 for 2 nodes = 4 opportunities
        assert outcomes.opportunities == 4
        assert outcomes.delivered_on_time == 1
        assert outcomes.delivered_late == 1
        assert outcomes.on_time_ratio == 0.25
        assert outcomes.messages_per_update == 5.0

    def test_earliest_update_wins(self):
        catalog, history = make_history()
        log = [
            self.update(node=1, version=2, at=300.0),
            self.update(node=1, version=2, at=150.0),
        ]
        outcomes = refresh_outcomes(
            log, history, catalog, caching_nodes=[1], horizon=400.0, messages=0.0
        )
        assert outcomes.delivered_on_time == 1
        assert outcomes.delivered_late == 0

    def test_versions_without_full_window_not_scored(self):
        catalog, history = make_history()
        # horizon 250: version 3 (published 200) lacks a full 100 s window
        outcomes = refresh_outcomes(
            [], history, catalog, caching_nodes=[1], horizon=250.0, messages=0.0
        )
        assert outcomes.opportunities == 1  # only version 2

    def test_version_one_not_scored(self):
        catalog, history = make_history()
        log = [self.update(node=1, version=1, at=5.0)]
        outcomes = refresh_outcomes(
            log, history, catalog, caching_nodes=[1], horizon=400.0, messages=0.0
        )
        assert outcomes.delivered_on_time + outcomes.delivered_late == 0

    def test_empty_history(self):
        catalog = DataCatalog(
            [DataItem(item_id=0, source=9, refresh_interval=10.0, lifetime=20.0)]
        )
        outcomes = refresh_outcomes(
            [], VersionHistory(), catalog, caching_nodes=[1], horizon=100.0,
            messages=0.0,
        )
        assert outcomes.opportunities == 0
        assert math.isnan(outcomes.on_time_ratio)


class TestSummarize:
    def test_single_value(self):
        summary = summarize([0.5])
        assert summary.mean == 0.5
        assert summary.ci95 == 0.0
        assert summary.n == 1

    def test_mean_and_ci(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.std == 1.0
        # t(2, 0.975) = 4.303
        assert summary.ci95 == pytest.approx(4.303 / math.sqrt(3), rel=1e-3)

    def test_nans_dropped(self):
        summary = summarize([1.0, float("nan"), 3.0])
        assert summary.n == 2
        assert summary.mean == 2.0

    def test_all_nan(self):
        summary = summarize([float("nan")])
        assert summary.n == 0
        assert math.isnan(summary.mean)

    def test_str_formats(self):
        assert str(Summary(mean=0.5, std=0.0, ci95=0.0, n=1)) == "0.5000"
        assert "+/-" in str(Summary(mean=0.5, std=0.1, ci95=0.05, n=3))
        assert str(Summary(mean=math.nan, std=math.nan, ci95=math.nan, n=0)) == "n/a"

    def test_large_n_uses_normal_value(self):
        values = [float(v % 7) for v in range(500)]
        summary = summarize(values)
        assert summary.n == 500
        assert summary.ci95 > 0


class TestTables:
    def test_format_table_aligns(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 22.0}]
        text = format_table(rows, title="T", precision=1)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.5" in text and "22.0" in text

    def test_format_table_missing_cells(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert "-" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_series(self):
        text = format_series("x", [1, 2], {"hdr": [0.5, 0.6], "src": [0.1, 0.2]})
        lines = text.splitlines()
        assert lines[0].split() == ["x", "hdr", "src"]
        assert len(lines) == 4

    def test_format_series_short_series_padded(self):
        text = format_series("x", [1, 2], {"hdr": [0.5]})
        assert "-" in text.splitlines()[-1]
