"""Tests for the fault-injection subsystem (plan, injectors, wiring)."""

import math

import pytest

from repro.experiments import Settings
from repro.experiments.artifacts import cache_clear
from repro.experiments.parallel import SweepPoint, run_sweep
from repro.experiments.runner import fault_injection, make_trace, run_once
from repro.faults import FaultPlan, install_faults, load_plan, plan_from_dict

DAY = 86400.0


@pytest.fixture(scope="module")
def settings():
    return Settings.fast().with_(duration=1 * DAY, seeds=(1,))


@pytest.fixture(scope="module")
def trace(settings):
    return make_trace(settings, 1)


@pytest.fixture(autouse=True)
def fresh_cache():
    cache_clear()
    yield
    cache_clear()


HARSH = FaultPlan(
    loss_rate=0.2,
    bandwidth_bps=200_000.0,
    crash_rate_per_day=4.0,
    mean_downtime_s=3600.0,
    cache_persistence="wipe",
    flap_rate=0.3,
    outage_rate_per_day=2.0,
    mean_outage_s=3600.0,
)


class TestFaultPlan:
    def test_default_plan_is_null(self):
        assert FaultPlan().is_null()

    def test_any_fault_knob_makes_it_non_null(self):
        assert not FaultPlan(loss_rate=0.1).is_null()
        assert not FaultPlan(crash_rate_per_day=1.0).is_null()
        assert not FaultPlan(flap_rate=0.1).is_null()
        assert not FaultPlan(bandwidth_bps=1e6).is_null()
        assert not FaultPlan(degrade_factor=0.5).is_null()
        assert not FaultPlan(outage_rate_per_day=1.0).is_null()

    @pytest.mark.parametrize("bad", [
        {"loss_rate": -0.1},
        {"loss_rate": 1.5},
        {"bandwidth_bps": 0.0},
        {"crash_rate_per_day": -1.0},
        {"mean_downtime_s": -5.0},
        {"crash_scope": "nobody"},
        {"cache_persistence": "frozen"},
        {"flap_rate": 2.0},
        {"min_cut_fraction": 1.5},
        {"degrade_factor": 0.0},
        {"outage_rate_per_day": -1.0},
    ])
    def test_validation_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            FaultPlan(**bad)

    def test_from_dict_toml_sections(self):
        plan = plan_from_dict({
            "messages": {"loss_rate": 0.1, "bandwidth_bps": 1e6},
            "crashes": {"rate_per_day": 2.0, "cache": "wipe"},
            "links": {"flap_rate": 0.2},
            "sources": {"outage_rate_per_day": 1.0},
        })
        assert plan.loss_rate == 0.1
        assert plan.bandwidth_bps == 1e6
        assert plan.crash_rate_per_day == 2.0
        assert plan.cache_persistence == "wipe"
        assert plan.flap_rate == 0.2
        assert plan.outage_rate_per_day == 1.0

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            plan_from_dict({"messages": {"loss_rat": 0.1}})
        with pytest.raises(ValueError, match="unknown"):
            plan_from_dict({"typo_section": {"loss_rate": 0.1}})

    def test_load_plan_round_trip(self, tmp_path):
        path = tmp_path / "plan.toml"
        path.write_text(
            "[messages]\nloss_rate = 0.25\n[crashes]\nrate_per_day = 1.5\n"
        )
        plan = load_plan(path)
        assert plan.loss_rate == 0.25
        assert plan.crash_rate_per_day == 1.5

    def test_load_plan_bad_toml_raises_value_error(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[messages\nloss_rate=")
        with pytest.raises(ValueError):
            load_plan(path)

    def test_example_plan_parses(self):
        from pathlib import Path

        example = Path(__file__).resolve().parent.parent / "examples" / "faults" / "harsh.toml"
        plan = load_plan(example)
        assert not plan.is_null()


class TestNullPlanIdentity:
    """A null/absent plan must leave runs bit-identical."""

    def test_null_plan_matches_no_plan(self, trace, settings):
        base = run_once(trace, "hdr", settings, seed=1)
        null = run_once(trace, "hdr", settings, seed=1, fault_plan=FaultPlan())
        assert base.same_as(null)

    def test_install_faults_returns_none_for_null_plan(self, trace, settings):
        from repro.core.scheme import build_simulation
        from repro.experiments.runner import choose_sources, make_catalog

        catalog = make_catalog(settings, choose_sources(trace, settings))
        runtime = build_simulation(trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        assert install_faults(runtime, None, seed=1, until=DAY) is None
        assert install_faults(runtime, FaultPlan(), seed=1, until=DAY) is None
        assert runtime.network.faults is None


class TestFaultDeterminism:
    def test_same_plan_same_seed_is_identical(self, trace, settings):
        first = run_once(trace, "hdr", settings, seed=1, fault_plan=HARSH)
        second = run_once(trace, "hdr", settings, seed=1, fault_plan=HARSH)
        assert first.same_as(second)

    def test_faults_actually_change_the_run(self, trace, settings):
        base = run_once(trace, "hdr", settings, seed=1)
        faulted = run_once(trace, "hdr", settings, seed=1, fault_plan=HARSH)
        assert not faulted.same_as(base)

    def test_seed_salt_changes_the_fault_stream(self, trace, settings):
        salted = HARSH.with_(seed_salt=0x1234)
        a = run_once(trace, "hdr", settings, seed=1, fault_plan=HARSH)
        b = run_once(trace, "hdr", settings, seed=1, fault_plan=salted)
        assert not a.same_as(b)

    def test_ambient_context_equals_explicit_argument(self, trace, settings):
        explicit = run_once(trace, "hdr", settings, seed=1, fault_plan=HARSH)
        with fault_injection(HARSH):
            ambient = run_once(trace, "hdr", settings, seed=1)
        assert explicit.same_as(ambient)

    def test_serial_and_parallel_faulted_sweeps_match(self, settings):
        point = SweepPoint(settings=settings, schemes=("hdr", "flat"),
                           fault_plan=HARSH)
        serial = run_sweep([point], jobs=1)[0]
        parallel = run_sweep([point], jobs=2)[0]
        assert set(serial) == set(parallel)
        for scheme in serial:
            for a, b in zip(serial[scheme], parallel[scheme]):
                assert a.same_as(b)


def _build_runtime(trace, settings, seed=1, bus=None):
    from repro.core.scheme import build_simulation
    from repro.experiments.runner import choose_sources, make_catalog

    catalog = make_catalog(settings, choose_sources(trace, settings))
    return build_simulation(trace, catalog, scheme="hdr",
                            num_caching_nodes=5, seed=seed, bus=bus)


class TestInjectors:
    def test_loss_counted_and_reduces_deliveries(self, trace, settings):
        runtime = _build_runtime(trace, settings)
        install_faults(runtime, FaultPlan(loss_rate=0.5), seed=1, until=DAY)
        runtime.run(until=DAY)
        lost = runtime.stats.counter_value("fault.msg_lost")
        sent = runtime.stats.counter_value("net.transfers")
        assert lost > 0
        # Roughly half of admitted transfers should be lost.
        assert 0.3 < lost / sent < 0.7

    def test_crash_wipe_keeps_accountant_consistent(self, trace, settings):
        runtime = _build_runtime(trace, settings)
        install_faults(
            runtime,
            FaultPlan(crash_rate_per_day=8.0, mean_downtime_s=1800.0,
                      cache_persistence="wipe"),
            seed=1, until=DAY,
        )
        runtime.run(until=DAY)
        assert runtime.stats.counter_value("fault.crashes") > 0
        # The incremental accountant must agree with a brute-force scan
        # even after mid-run cache wipes and offline windows.
        assert runtime.freshness_snapshot() == runtime.freshness_snapshot(
            recompute=True
        )

    def test_warm_restart_does_not_wipe(self, trace, settings):
        runtime = _build_runtime(trace, settings)
        install_faults(
            runtime,
            FaultPlan(crash_rate_per_day=8.0, mean_downtime_s=1800.0,
                      cache_persistence="warm"),
            seed=1, until=DAY,
        )
        runtime.run(until=DAY)
        assert runtime.stats.counter_value("fault.crashes") > 0
        assert runtime.stats.counter_value("fault.cache_entries_wiped") == 0

    def test_outages_stall_publishes(self, trace, settings):
        runtime = _build_runtime(trace, settings)
        install_faults(
            runtime,
            FaultPlan(outage_rate_per_day=24.0, mean_outage_s=7200.0),
            seed=1, until=DAY,
        )
        runtime.run(until=DAY)
        assert runtime.stats.counter_value("fault.source_outages") > 0
        assert runtime.stats.counter_value("refresh.publishes_stalled") > 0

    def test_flaps_shorten_contacts(self, trace, settings):
        runtime = _build_runtime(trace, settings)
        install_faults(
            runtime,
            FaultPlan(flap_rate=0.5, min_cut_fraction=0.1),
            seed=1, until=DAY,
        )
        runtime.run(until=DAY)
        assert runtime.stats.counter_value("fault.link_flaps") > 0

    def test_bandwidth_delay_can_truncate(self, trace, settings):
        runtime = _build_runtime(trace, settings)
        # Very slow radio: 1 KiB takes ~82 s, so some transfers outlive
        # their contact and are truncated.
        install_faults(runtime, FaultPlan(bandwidth_bps=100.0),
                       seed=1, until=DAY)
        runtime.run(until=DAY)
        assert runtime.stats.counter_value("fault.msg_delayed") > 0
        assert runtime.stats.counter_value("fault.msg_truncated") > 0

    def test_fault_records_round_trip(self, trace, settings, tmp_path):
        from repro.obs.bus import EventBus
        from repro.obs.export import read_jsonl, write_jsonl

        bus = EventBus()
        runtime = _build_runtime(trace, settings, bus=bus)
        install_faults(runtime, HARSH, seed=1, until=DAY)
        runtime.run(until=DAY)
        kinds = {record.kind for record in bus.records}
        assert "fault.msg_loss" in kinds
        assert "fault.crash" in kinds
        assert "fault.flap" in kinds
        path = tmp_path / "faults.jsonl"
        write_jsonl(bus.records, path)
        loaded = read_jsonl(path)
        assert [r.as_dict() for r in loaded] == [
            r.as_dict() for r in bus.records
        ]

    def test_fault_report_section(self, trace, settings):
        from repro.obs.bus import EventBus
        from repro.obs.report import format_trace_report

        bus = EventBus()
        runtime = _build_runtime(trace, settings, bus=bus)
        install_faults(runtime, HARSH, seed=1, until=DAY)
        runtime.run(until=DAY)
        report = format_trace_report(bus.records)
        assert "injected faults" in report
        assert "msg_loss" in report


class TestForcedContactClose:
    """Satellite: link budgets released exactly once on abrupt close."""

    def _tiny_network(self):
        from repro.mobility.trace import Contact
        from repro.sim.engine import Simulator
        from repro.sim.network import BandwidthLimitedLink, ContactNetwork
        from repro.sim.node import Node

        sim = Simulator()
        nodes = {0: Node(0), 1: Node(1)}
        contacts = [Contact(start=10.0, end=110.0, a=0, b=1),
                    Contact(start=110.0, end=150.0, a=0, b=1)]
        link = BandwidthLimitedLink(bandwidth_bps=8.0)  # 1 byte/s
        network = ContactNetwork(sim, nodes, contacts, link_model=link)
        return sim, nodes, link, network

    def test_forced_close_releases_budget_once(self):
        sim, nodes, link, network = self._tiny_network()
        network.start()
        sim.run(until=50.0)
        assert link.open_budgets == 1
        assert network.force_contact_close(0, 1) is True
        assert link.open_budgets == 0
        assert not nodes[0].in_contact_with(1)
        # A second forced close is a no-op (nothing open).
        assert network.force_contact_close(0, 1) is False

    def test_stale_end_does_not_close_next_contact(self):
        sim, nodes, link, network = self._tiny_network()
        network.start()
        sim.run(until=50.0)
        network.force_contact_close(0, 1)
        # The second contact opens at t=110 -- the same timestamp the
        # first contact's stale end event fires.  The marker must absorb
        # that stale end, leaving the new contact (and budget) intact.
        sim.run(until=120.0)
        assert nodes[0].in_contact_with(1)
        assert link.open_budgets == 1
        sim.run(until=200.0)
        assert not nodes[0].in_contact_with(1)
        assert link.open_budgets == 0
        assert not network._forced_closed

    def test_offline_close_tolerates_stale_end(self):
        sim, nodes, link, network = self._tiny_network()
        network.start()
        sim.run(until=50.0)
        network.set_online(0, False)
        assert link.open_budgets == 0
        sim.run(until=200.0)  # stale end at t=110 must not blow up
        assert link.open_budgets == 0


class TestEagerValidation:
    """Satellite: malformed sweeps fail before any worker spawns."""

    def test_unknown_scheme_rejected(self, settings):
        from repro.experiments.parallel import build_jobs

        point = SweepPoint(settings=settings, schemes=("hdrr",))
        with pytest.raises(ValueError, match="unknown scheme"):
            build_jobs([point])

    def test_bad_settings_rejected(self, settings):
        from repro.experiments.parallel import build_jobs

        point = SweepPoint(settings=settings.with_(refresh_interval=-1.0),
                           schemes=("hdr",))
        with pytest.raises(ValueError, match="refresh_interval"):
            build_jobs([point])

    def test_empty_schemes_rejected(self, settings):
        from repro.experiments.parallel import build_jobs

        with pytest.raises(ValueError, match="no schemes"):
            build_jobs([SweepPoint(settings=settings)])

    def test_settings_validate_lists_every_error(self):
        with pytest.raises(ValueError) as excinfo:
            Settings(duration=-1.0, num_items=0, seeds=()).validate()
        message = str(excinfo.value)
        assert "duration" in message
        assert "num_items" in message
        assert "seeds" in message

    def test_default_settings_validate(self):
        assert Settings().validate() is not None
        assert Settings.fast().validate() is not None


class TestE15:
    def test_e15_runs_fast(self, settings):
        from repro.experiments.e15_fault_tolerance import run

        result = run(settings.with_(seeds=(1,), profile="small"))
        assert result.exp_id == "E15"
        data = result.data
        assert set(data["freshness"]) == {"hdr", "flat", "flooding"}
        # The harshest corner must not beat the baseline corner.
        for scheme in data["freshness"]:
            series = data["freshness"][scheme]
            assert not math.isnan(series[0])
            assert series[-1] <= series[0] + 1e-9
