"""Tests for the Poisson contact generators."""

import numpy as np
import pytest

from repro.mobility.synthetic import (
    PoissonContactModel,
    community_rate_matrix,
    gamma_rate_matrix,
    homogeneous_rate_matrix,
)


class TestRateMatrices:
    def test_homogeneous(self):
        rates = homogeneous_rate_matrix(4, 0.5)
        assert rates.shape == (4, 4)
        assert (np.diag(rates) == 0).all()
        off = rates[np.triu_indices(4, k=1)]
        assert (off == 0.5).all()

    def test_homogeneous_validation(self):
        with pytest.raises(ValueError):
            homogeneous_rate_matrix(1, 0.5)
        with pytest.raises(ValueError):
            homogeneous_rate_matrix(4, -0.1)

    def test_gamma_mean_approx(self, rng):
        rates = gamma_rate_matrix(40, mean_rate=2.0, shape=2.0, rng=rng)
        off = rates[np.triu_indices(40, k=1)]
        assert off.mean() == pytest.approx(2.0, rel=0.1)
        assert (rates == rates.T).all()
        assert (np.diag(rates) == 0).all()

    def test_gamma_sparsity(self, rng):
        rates = gamma_rate_matrix(40, mean_rate=1.0, shape=2.0, rng=rng, sparsity=0.5)
        off = rates[np.triu_indices(40, k=1)]
        zero_fraction = (off == 0).mean()
        assert 0.35 < zero_fraction < 0.65

    def test_gamma_validation(self, rng):
        with pytest.raises(ValueError):
            gamma_rate_matrix(4, mean_rate=0, shape=1, rng=rng)
        with pytest.raises(ValueError):
            gamma_rate_matrix(4, mean_rate=1, shape=1, rng=rng, sparsity=1.0)

    def test_community_structure(self, rng):
        rates, membership = community_rate_matrix(
            60, 3, intra_rate=1.0, inter_rate=0.01, rng=rng,
            hub_fraction=0.0, jitter_shape=50.0,
        )
        assert len(membership) == 60
        assert set(membership) <= {0, 1, 2}
        intra, inter = [], []
        for i in range(60):
            for j in range(i + 1, 60):
                (intra if membership[i] == membership[j] else inter).append(rates[i, j])
        assert np.mean(intra) > 10 * np.mean(inter)

    def test_community_hubs_boosted(self, rng):
        rates, _ = community_rate_matrix(
            30, 1, intra_rate=1.0, inter_rate=1.0, rng=rng,
            hub_fraction=0.1, hub_multiplier=100.0, jitter_shape=50.0,
        )
        degrees = rates.sum(axis=1)
        # hubs stand out by an order of magnitude
        assert degrees.max() > 5 * np.median(degrees)

    def test_community_validation(self, rng):
        with pytest.raises(ValueError):
            community_rate_matrix(10, 0, 1.0, 0.1, rng)
        with pytest.raises(ValueError):
            community_rate_matrix(10, 11, 1.0, 0.1, rng)


class TestPoissonContactModel:
    def test_contact_count_matches_expectation(self, rng):
        rate = 0.01  # per second
        model = PoissonContactModel(homogeneous_rate_matrix(5, rate), mean_duration=1.0)
        duration = 10000.0
        trace = model.generate(duration, rng)
        expected = model.expected_contacts(duration)
        assert expected == pytest.approx(10 * rate * duration)
        assert len(trace) == pytest.approx(expected, rel=0.15)

    def test_zero_rate_pair_never_meets(self, rng):
        rates = homogeneous_rate_matrix(3, 0.01)
        rates[0, 1] = rates[1, 0] = 0.0
        model = PoissonContactModel(rates, mean_duration=1.0)
        trace = model.generate(5000.0, rng)
        assert (0, 1) not in trace.pair_contacts()

    def test_contacts_within_horizon(self, rng):
        model = PoissonContactModel(homogeneous_rate_matrix(4, 0.01), mean_duration=50.0)
        trace = model.generate(1000.0, rng)
        assert all(0 <= c.start <= 1000.0 and c.end <= 1000.0 for c in trace)

    def test_durations_near_mean(self, rng):
        model = PoissonContactModel(
            homogeneous_rate_matrix(6, 0.005), mean_duration=20.0
        )
        trace = model.generate(50000.0, rng)
        durations = [c.duration for c in trace]
        assert np.mean(durations) == pytest.approx(20.0, rel=0.2)

    def test_intercontact_times_are_exponential(self, rng):
        """KS distance of gaps to the fitted exponential should be small."""
        from repro.contacts.intercontact import fit_exponential, ks_distance

        model = PoissonContactModel(homogeneous_rate_matrix(2, 0.02), mean_duration=0.5)
        trace = model.generate(200000.0, rng)
        gaps = trace.inter_contact_times()[(0, 1)]
        assert len(gaps) > 1000
        rate = fit_exponential(gaps)
        assert ks_distance(gaps, rate) < 0.05

    def test_custom_node_ids(self, rng):
        model = PoissonContactModel(
            homogeneous_rate_matrix(3, 0.01), node_ids=[10, 20, 30]
        )
        trace = model.generate(1000.0, rng)
        assert set(trace.node_ids) <= {10, 20, 30}

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PoissonContactModel(np.ones((2, 3)))
        asym = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            PoissonContactModel(asym)
        with pytest.raises(ValueError):
            PoissonContactModel(homogeneous_rate_matrix(2, 1.0), mean_duration=0)
        with pytest.raises(ValueError):
            PoissonContactModel(homogeneous_rate_matrix(2, 1.0), node_ids=[1])
        model = PoissonContactModel(homogeneous_rate_matrix(2, 1.0))
        with pytest.raises(ValueError):
            model.generate(0.0, rng)

    def test_deterministic_given_seed(self):
        model = PoissonContactModel(homogeneous_rate_matrix(4, 0.01))
        a = model.generate(1000.0, np.random.default_rng(5))
        b = model.generate(1000.0, np.random.default_rng(5))
        assert len(a) == len(b)
        assert all(x.pair == y.pair and x.start == y.start for x, y in zip(a, b))


class TestVectorisedBitIdentity:
    """The vectorised generators must reproduce the scalar paths exactly:
    same contacts, same order, bit-identical timestamps per seed."""

    def _scalar(self, fn):
        from repro.experiments.bench import legacy_mode

        with legacy_mode():
            return fn()

    def test_poisson_model_identical_to_scalar(self):
        model = PoissonContactModel(homogeneous_rate_matrix(6, 0.005))
        vectorised = model.generate(100_000.0, np.random.default_rng(3))
        scalar = self._scalar(
            lambda: model.generate(100_000.0, np.random.default_rng(3))
        )
        assert list(vectorised) == list(scalar)

    @pytest.mark.parametrize("name", ["infocom06", "reality", "small"])
    def test_calibration_profile_identical_to_scalar(self, name):
        from repro.mobility.calibration import get_profile

        profile = get_profile(name)
        vectorised = profile.generate(np.random.default_rng(1))
        scalar = self._scalar(lambda: profile.generate(np.random.default_rng(1)))
        assert len(vectorised) == len(scalar)
        assert list(vectorised) == list(scalar)
        assert vectorised.node_ids == scalar.node_ids
