"""Tests for the calibrated trace profiles."""

import numpy as np
import pytest

from repro.mobility.calibration import get_profile, list_profiles


class TestProfiles:
    def test_list_profiles(self):
        names = list_profiles()
        assert "reality" in names
        assert "infocom06" in names
        assert "small" in names

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError, match="unknown profile"):
            get_profile("nope")

    def test_node_counts_match_published(self):
        assert get_profile("reality").num_nodes == 97
        assert get_profile("infocom06").num_nodes == 78

    def test_small_generates_quickly(self, rng):
        trace = get_profile("small").generate(rng, duration=86400.0)
        assert trace.num_nodes <= 20
        assert len(trace) > 100
        assert trace.name == "small"

    def test_custom_duration_respected(self, rng):
        trace = get_profile("small").generate(rng, duration=3600.0 * 6)
        assert trace.end_time <= 6 * 3600.0

    def test_reality_is_sparser_than_infocom(self):
        """Contacts per node per day: conference >> campus."""
        day = 86400.0
        reality = get_profile("reality").generate(
            np.random.default_rng(1), duration=3 * day
        )
        infocom = get_profile("infocom06").generate(
            np.random.default_rng(1), duration=3 * day
        )
        reality_rate = 2 * len(reality) / reality.num_nodes / 3
        infocom_rate = 2 * len(infocom) / infocom.num_nodes / 3
        assert infocom_rate > 2 * reality_rate

    def test_diurnal_cycle_present(self, rng):
        """Night hours (0-5) carry far fewer contacts than day (9-17)."""
        trace = get_profile("small").generate(rng, duration=4 * 86400.0)
        night = sum(1 for c in trace if (int(c.start // 3600) % 24) < 6)
        day = sum(1 for c in trace if 9 <= (int(c.start // 3600) % 24) < 18)
        assert day > 5 * max(night, 1)

    def test_deterministic_given_seed(self):
        a = get_profile("small").generate(np.random.default_rng(3), duration=86400.0)
        b = get_profile("small").generate(np.random.default_rng(3), duration=86400.0)
        assert len(a) == len(b)
        assert all(x.pair == y.pair and x.start == y.start for x, y in zip(a, b))
