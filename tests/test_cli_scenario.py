"""Tests for the `repro scenario` CLI."""

import pytest

from repro.cli import build_parser, main

GOOD = """
[scenario]
name = "cli-good"
title = "A quick CLI scenario"

[settings]
profile = "small"
duration_hours = 24.0
seeds = [1]
num_caching_nodes = 5
num_items = 4
num_sources = 1
refresh_interval_hours = 3.0
probe_interval_minutes = 20.0

[run]
schemes = ["hdr"]

[[grid.axes]]
key = "settings.refresh_interval_hours"
values = [3.0, 6.0]
"""

BAD = """
[scenario]
name = "cli-bad"

[run]
schemes = ["bogus"]
backend = "gpu"
"""


@pytest.fixture()
def scenario_dir(tmp_path):
    (tmp_path / "good.toml").write_text(GOOD)
    return tmp_path


class TestParser:
    def test_scenario_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["scenario", "run", "quickstart"])
        assert args.name == "quickstart"
        assert args.dir == "scenarios"
        assert args.resume is False


class TestListShowValidate:
    def test_list(self, scenario_dir, capsys):
        assert main(["scenario", "list", "--dir", str(scenario_dir)]) == 0
        out = capsys.readouterr().out
        assert "cli-good" in out
        assert "2 grid points" in out

    def test_list_empty_dir(self, tmp_path, capsys):
        assert main(["scenario", "list", "--dir", str(tmp_path)]) == 0
        assert "no scenarios" in capsys.readouterr().out

    def test_show(self, scenario_dir, capsys):
        assert main(["scenario", "show", "cli-good",
                     "--dir", str(scenario_dir)]) == 0
        out = capsys.readouterr().out
        assert "cli-good" in out
        assert "grid points: 2" in out
        assert "refresh_interval_hours=6.0" in out

    def test_show_unknown_name(self, scenario_dir, capsys):
        assert main(["scenario", "show", "nope",
                     "--dir", str(scenario_dir)]) == 2
        out = capsys.readouterr().out
        assert "unknown scenario 'nope'" in out
        assert "cli-good" in out  # suggests what exists

    def test_validate_all_ok(self, scenario_dir, capsys):
        assert main(["scenario", "validate",
                     "--dir", str(scenario_dir)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_validate_reports_file_table_key(self, scenario_dir, capsys):
        bad = scenario_dir / "bad.toml"
        bad.write_text(BAD)
        assert main(["scenario", "validate", str(bad)]) == 2
        out = capsys.readouterr().out
        assert str(bad) in out
        assert "[run]" in out
        assert "bogus" in out
        assert "Traceback" not in out

    def test_validate_mixed_results_fail_overall(self, scenario_dir, capsys):
        (scenario_dir / "bad.toml").write_text(BAD)
        assert main(["scenario", "validate",
                     "--dir", str(scenario_dir)]) == 2
        out = capsys.readouterr().out
        assert "ok:" in out and "error:" in out

    def test_committed_scenarios_validate(self, capsys):
        from pathlib import Path

        scenarios = Path(__file__).resolve().parents[1] / "scenarios"
        assert main(["scenario", "validate", "--dir", str(scenarios)]) == 0
        out = capsys.readouterr().out
        assert out.count("ok:") >= 6


class TestRun:
    def test_run_grid(self, scenario_dir, capsys):
        assert main(["scenario", "run", "cli-good",
                     "--dir", str(scenario_dir)]) == 0
        out = capsys.readouterr().out
        assert "scenario cli-good" in out
        assert "refresh_interval_hours=3.0" in out
        assert "refresh_interval_hours=6.0" in out
        assert "freshness" in out

    def test_run_with_checkpoint_and_resume(self, scenario_dir, tmp_path,
                                            capsys):
        checkpoint = tmp_path / "ckpt"
        argv = ["scenario", "run", "cli-good", "--dir", str(scenario_dir),
                "--checkpoint", str(checkpoint)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "checkpoint journal" in first
        assert (checkpoint / "cli-good" / "journal.jsonl").exists()
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "freshness" in resumed

    def test_run_unknown_scenario(self, scenario_dir, capsys):
        assert main(["scenario", "run", "nope",
                     "--dir", str(scenario_dir)]) == 2

    def test_run_invalid_file_clean_error(self, scenario_dir, capsys):
        bad = scenario_dir / "bad.toml"
        bad.write_text(BAD)
        assert main(["scenario", "run", str(bad)]) == 2
        out = capsys.readouterr().out
        assert "error:" in out
        assert "Traceback" not in out

    def test_run_bad_jobs_value(self, scenario_dir, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        assert main(["scenario", "run", "cli-good",
                     "--dir", str(scenario_dir)]) == 2
