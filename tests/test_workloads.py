"""Tests for popularity distributions and query scheduling."""

import numpy as np
import pytest

from repro.workloads.popularity import UniformPopularity, ZipfPopularity
from repro.workloads.queries import schedule_queries


class TestZipfPopularity:
    def test_pmf_sums_to_one(self):
        pop = ZipfPopularity([0, 1, 2, 3], s=0.8)
        assert pop.pmf().sum() == pytest.approx(1.0)

    def test_rank_order(self):
        pmf = ZipfPopularity([10, 20, 30], s=1.0).pmf()
        assert pmf[0] > pmf[1] > pmf[2]
        assert pmf[0] == pytest.approx(2 * pmf[1])

    def test_sampling_matches_pmf(self, rng):
        pop = ZipfPopularity([0, 1, 2], s=1.0)
        draws = pop.sample_many(30000, rng)
        counts = np.bincount(draws, minlength=3) / 30000
        assert counts == pytest.approx(pop.pmf(), abs=0.02)

    def test_sample_single(self, rng):
        pop = ZipfPopularity([7], s=0.8)
        assert pop.sample(rng) == 7

    def test_uniform_special_case(self, rng):
        pop = UniformPopularity([0, 1, 2, 3])
        assert pop.pmf() == pytest.approx([0.25] * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPopularity([], s=0.8)
        with pytest.raises(ValueError):
            ZipfPopularity([0], s=-1.0)


class TestZipfNormalisationCache:
    def test_same_shape_shares_arrays(self):
        a = ZipfPopularity([0, 1, 2, 3], s=0.8)
        b = ZipfPopularity([9, 8, 7, 6], s=0.8)
        assert a._cdf is b._cdf
        assert a._pmf is b._pmf

    def test_different_exponent_not_shared(self):
        a = ZipfPopularity([0, 1, 2], s=0.8)
        b = ZipfPopularity([0, 1, 2], s=1.2)
        assert a._cdf is not b._cdf

    def test_cached_arrays_are_frozen(self):
        pop = ZipfPopularity([0, 1, 2], s=0.8)
        with pytest.raises(ValueError):
            pop._cdf[0] = 0.5
        # pmf() hands out a copy, so callers can't corrupt the cache
        pop.pmf()[0] = 0.5
        assert ZipfPopularity([0, 1, 2], s=0.8).pmf()[0] != 0.5

    def test_draws_bit_identical_to_uncached_maths(self):
        ids = [5, 6, 7, 8]
        pop = ZipfPopularity(ids, s=0.9)
        weights = np.arange(1, len(ids) + 1, dtype=float) ** (-0.9)
        cdf = np.cumsum(weights / weights.sum())
        got = pop.sample_array(1000, np.random.default_rng(42))
        draws = np.random.default_rng(42).random(1000)
        indexes = np.searchsorted(cdf, draws, side="right")
        np.minimum(indexes, len(ids) - 1, out=indexes)
        expected = np.asarray(ids, dtype=np.int64)[indexes]
        assert np.array_equal(got, expected)

    def test_sample_many_matches_sample_array(self):
        pop = ZipfPopularity([0, 1, 2], s=0.8)
        listed = pop.sample_many(200, np.random.default_rng(7))
        arrayed = pop.sample_array(200, np.random.default_rng(7))
        assert listed == [int(i) for i in arrayed]
        assert all(isinstance(i, int) for i in listed)


class TestScheduleQueries:
    @pytest.fixture
    def runtime(self):
        from repro.caching.items import DataCatalog
        from repro.core.scheme import build_simulation
        from repro.mobility.calibration import get_profile

        trace = get_profile("small").generate(
            np.random.default_rng(5), duration=43200.0
        )
        catalog = DataCatalog.uniform(
            2, sources=[trace.node_ids[0]], refresh_interval=3600.0
        )
        return build_simulation(trace, catalog, scheme="hdr",
                                num_caching_nodes=4, seed=1, with_queries=True)

    def test_schedules_poisson_count(self, runtime, rng):
        count = schedule_queries(
            runtime, rate_per_node=10 / 43200.0, duration=43200.0, rng=rng
        )
        requesters = (
            len(runtime.nodes) - len(runtime.sources) - len(runtime.caching_nodes)
        )
        assert count == pytest.approx(10 * requesters, rel=0.5)

    def test_queries_actually_issued(self, runtime, rng):
        schedule_queries(runtime, rate_per_node=5 / 43200.0, duration=43200.0, rng=rng)
        runtime.run(until=43200.0)
        records = runtime.query_records()
        assert records
        assert records == sorted(records, key=lambda r: r.issued_at)

    def test_requesters_exclude_infrastructure(self, runtime, rng):
        schedule_queries(runtime, rate_per_node=20 / 43200.0, duration=43200.0, rng=rng)
        runtime.run(until=43200.0)
        issuers = {r.requester for r in runtime.query_records()}
        assert not issuers & set(runtime.sources)
        assert not issuers & set(runtime.caching_nodes)

    def test_explicit_requesters(self, runtime, rng):
        nid = [
            n for n in runtime.nodes
            if n not in runtime.sources and n not in runtime.caching_nodes
        ][0]
        schedule_queries(
            runtime, rate_per_node=50 / 43200.0, duration=43200.0, rng=rng,
            requesters=[nid],
        )
        runtime.run(until=43200.0)
        assert {r.requester for r in runtime.query_records()} == {nid}

    def test_validation(self, runtime, rng):
        with pytest.raises(ValueError):
            schedule_queries(runtime, rate_per_node=-1.0, duration=10.0, rng=rng)
        with pytest.raises(ValueError):
            schedule_queries(runtime, rate_per_node=1.0, duration=0.0, rng=rng)

    def test_requires_query_plane(self, rng):
        from repro.caching.items import DataCatalog
        from repro.core.scheme import build_simulation
        from repro.mobility.calibration import get_profile

        trace = get_profile("small").generate(
            np.random.default_rng(5), duration=3600.0
        )
        catalog = DataCatalog.uniform(
            1, sources=[trace.node_ids[0]], refresh_interval=3600.0
        )
        runtime = build_simulation(trace, catalog, scheme="hdr", num_caching_nodes=3)
        with pytest.raises(ValueError, match="query plane"):
            schedule_queries(runtime, rate_per_node=1.0, duration=10.0, rng=rng)
