"""Simulation-vs-closed-form validation.

The replication analysis rests on renewal arguments over exponential
inter-contacts.  These tests generate traces from exactly that model and
check that the *simulated protocol* reproduces the closed forms --
end-to-end validation that the event machinery, the refresh protocol and
the analysis agree.
"""

import numpy as np
import pytest

from repro.caching.items import DataCatalog, DataItem
from repro.core.replication import (
    contact_probability,
    expected_fresh_fraction,
    two_hop_probability,
)
from repro.core.scheme import build_simulation
from repro.mobility.synthetic import PoissonContactModel, homogeneous_rate_matrix
from repro.mobility.trace import ContactTrace


def source_only_runtime(trace, refresh_interval, lifetime_factor=1000.0):
    """One source (node 0), one caching node (node 1), source-only refresh."""
    catalog = DataCatalog(
        [
            DataItem(
                item_id=0,
                source=0,
                refresh_interval=refresh_interval,
                lifetime=lifetime_factor * refresh_interval,
            )
        ]
    )
    return build_simulation(
        trace, catalog, scheme="source", caching_nodes=[1], seed=1
    )


class TestFreshFractionClosedForm:
    @pytest.mark.parametrize("rate_x_interval", [0.5, 1.0, 3.0])
    def test_source_only_fresh_fraction(self, rate_x_interval):
        """Fraction of time the single cached copy is fresh.

        Under source-only refresh with contact rate lambda and refresh
        interval R, the closed form is 1 - (1 - e^{-lambda R})/(lambda R).
        """
        interval = 1000.0
        rate = rate_x_interval / interval
        horizon = 4000 * interval / rate_x_interval  # many renewal cycles
        model = PoissonContactModel(
            homogeneous_rate_matrix(2, rate), mean_duration=1e-3
        )
        trace = model.generate(horizon, np.random.default_rng(8))
        runtime = source_only_runtime(trace, interval)
        runtime.install_freshness_probe(interval=interval / 7.3, until=horizon)
        runtime.run(until=horizon)
        measured = runtime.stats.series("probe.freshness").mean()
        predicted = expected_fresh_fraction(rate, interval)
        assert measured == pytest.approx(predicted, abs=0.03)

    def test_on_time_ratio_matches_contact_probability(self):
        """P(refresh delivered within R) should be 1 - e^{-lambda R}."""
        from repro.analysis.metrics import refresh_outcomes

        interval = 1000.0
        rate = 1.2 / interval
        horizon = 3000 * interval
        model = PoissonContactModel(
            homogeneous_rate_matrix(2, rate), mean_duration=1e-3
        )
        trace = model.generate(horizon, np.random.default_rng(9))
        runtime = source_only_runtime(trace, interval)
        runtime.run(until=horizon)
        outcome = refresh_outcomes(
            runtime.update_log,
            runtime.history,
            runtime.catalog,
            runtime.caching_nodes,
            horizon=horizon,
            messages=runtime.refresh_overhead(),
        )
        predicted = contact_probability(rate, interval)
        assert outcome.on_time_ratio == pytest.approx(predicted, abs=0.03)

    def test_relay_delivery_matches_two_hop_form(self):
        """A pure relay edge delivers within T w.p. the hypoexponential CDF.

        Topology: source 0 never meets caching node 2; node 1 meets both
        at known rates.  Every version must travel 0 -> 1 -> 2, so the
        on-time ratio should match ``two_hop_probability``.
        """
        from repro.analysis.metrics import refresh_outcomes
        from repro.contacts.rates import RateTable
        from repro.core.scheme import SchemeConfig

        interval = 1000.0
        rate_01 = 2.0 / interval
        rate_12 = 1.5 / interval
        horizon = 2500 * interval
        rates_matrix = np.zeros((3, 3))
        rates_matrix[0, 1] = rates_matrix[1, 0] = rate_01
        rates_matrix[1, 2] = rates_matrix[2, 1] = rate_12
        model = PoissonContactModel(rates_matrix, mean_duration=1e-3)
        trace = model.generate(horizon, np.random.default_rng(10))

        catalog = DataCatalog(
            [DataItem(item_id=0, source=0, refresh_interval=interval,
                      lifetime=1e9)]
        )
        config = SchemeConfig(name="relay-only", structure="star",
                              max_depth=1, max_relays=1)
        runtime = build_simulation(
            trace, catalog, scheme=config, caching_nodes=[2], seed=1
        )
        runtime.run(until=horizon)
        outcome = refresh_outcomes(
            runtime.update_log, runtime.history, catalog,
            runtime.caching_nodes, horizon=horizon,
            messages=runtime.refresh_overhead(),
        )
        predicted = two_hop_probability(rate_01, rate_12, interval)
        # The protocol re-hands a fresh copy per version, but node 1 may
        # still carry the task from before the version was published is
        # not possible (tasks are per-version), so the two-hop renewal
        # argument applies directly.
        assert outcome.on_time_ratio == pytest.approx(predicted, abs=0.05)


class TestMleRateRecovery:
    def test_estimated_rates_feed_consistent_plans(self):
        """Plans built from estimated rates match plans from true rates."""
        from repro.contacts.rates import mle_rates
        from repro.core.replication import plan_edge

        rate = 0.002
        model = PoissonContactModel(
            homogeneous_rate_matrix(4, rate), mean_duration=1e-3
        )
        trace = model.generate(2_000_000.0, np.random.default_rng(11))
        estimated = mle_rates(trace, t0=0.0, t1=2_000_000.0)
        candidates_true = [(2, rate, rate), (3, rate, rate)]
        candidates_est = [
            (2, estimated.rate(0, 2), estimated.rate(2, 1)),
            (3, estimated.rate(0, 3), estimated.rate(3, 1)),
        ]
        plan_true = plan_edge(0, 1, rate, candidates_true, window=1000.0,
                              target=0.9, max_relays=2)
        plan_est = plan_edge(0, 1, estimated.rate(0, 1), candidates_est,
                             window=1000.0, target=0.9, max_relays=2)
        assert plan_est.num_relays == plan_true.num_relays
        assert plan_est.achieved == pytest.approx(plan_true.achieved, abs=0.05)
