"""Tests for the contact-driven network and link models."""

from repro.mobility.trace import Contact, ContactTrace
from repro.sim.messages import Message
from repro.sim.network import BandwidthLimitedLink
from repro.sim.node import ProtocolHandler
from tests.conftest import build_network


class Sink(ProtocolHandler):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, message, sender):
        self.received.append((message, sender.node_id))


def pair_trace(start=10.0, end=20.0):
    return ContactTrace([Contact.make(0, 1, start, end)], node_ids=[0, 1])


class TestTransfer:
    def test_delivery_during_contact(self):
        net = build_network(pair_trace())
        sink = net.nodes[1].add_handler(Sink())
        net.start()
        net.sim.run(until=15.0)
        ok = net.transfer(
            Message(kind="x", src=0, dst=1, created_at=15.0), net.nodes[0], net.nodes[1]
        )
        assert ok
        net.sim.run(until=16.0)
        assert len(sink.received) == 1
        assert sink.received[0][1] == 0

    def test_rejected_when_not_in_contact(self):
        net = build_network(pair_trace())
        net.start()
        net.sim.run(until=5.0)
        ok = net.transfer(
            Message(kind="x", src=0, dst=1, created_at=5.0), net.nodes[0], net.nodes[1]
        )
        assert not ok
        assert net.stats.counter_value("net.transfer_rejected_no_contact") == 1

    def test_rejected_when_expired(self):
        net = build_network(pair_trace())
        net.start()
        net.sim.run(until=15.0)
        stale = Message(kind="x", src=0, dst=1, created_at=0.0, ttl=1.0)
        assert not net.transfer(stale, net.nodes[0], net.nodes[1])
        assert net.stats.counter_value("net.transfer_rejected_expired") == 1

    def test_hop_count_increments(self):
        net = build_network(pair_trace())
        net.nodes[1].add_handler(Sink())
        net.start()
        net.sim.run(until=15.0)
        message = Message(kind="x", src=0, dst=1, created_at=15.0)
        net.transfer(message, net.nodes[0], net.nodes[1])
        assert message.hop_count == 1

    def test_stats_count_transfers_by_kind(self):
        net = build_network(pair_trace())
        net.nodes[1].add_handler(Sink())
        net.start()
        net.sim.run(until=15.0)
        for kind in ("a", "a", "b"):
            net.transfer(
                Message(kind=kind, src=0, dst=1, created_at=15.0, size=100),
                net.nodes[0],
                net.nodes[1],
            )
        assert net.stats.counter_value("net.transfers") == 3
        assert net.stats.counter_value("net.transfers.a") == 2
        assert net.stats.counter_value("net.transfers.b") == 1
        assert net.stats.counter_value("net.bytes") == 300

    def test_transfer_records(self):
        net = build_network(pair_trace(), record_transfers=True)
        net.nodes[1].add_handler(Sink())
        net.start()
        net.sim.run(until=15.0)
        net.transfer(
            Message(kind="x", src=0, dst=1, created_at=15.0, size=64),
            net.nodes[0],
            net.nodes[1],
        )
        assert len(net.transfers) == 1
        record = net.transfers[0]
        assert (record.sender, record.receiver, record.size) == (0, 1, 64)


class TestTraceReplay:
    def test_contacts_scheduled_counter(self):
        net = build_network(pair_trace())
        assert net.stats.counter_value("net.contacts_scheduled") == 1

    def test_unknown_node_contacts_skipped(self):
        trace = ContactTrace(
            [Contact.make(0, 1, 1.0, 2.0), Contact.make(5, 6, 1.0, 2.0)],
            node_ids=[0, 1, 5, 6],
        )
        from repro.sim.engine import Simulator
        from repro.sim.node import Node
        from repro.sim.network import ContactNetwork

        sim = Simulator()
        nodes = {0: Node(0), 1: Node(1)}
        net = ContactNetwork(sim, nodes, trace)
        assert net.stats.counter_value("net.contacts_scheduled") == 1

    def test_run_returns_final_time(self):
        net = build_network(pair_trace())
        assert net.run(until=100.0) == 100.0


class TestBandwidthLimitedLink:
    def test_budget_derived_from_duration(self):
        # 10 s contact at 800 bps -> 1000 bytes budget.
        link = BandwidthLimitedLink(bandwidth_bps=800.0)
        net = build_network(pair_trace(10.0, 20.0), link_model=link)
        net.nodes[1].add_handler(Sink())
        net.start()
        net.sim.run(until=15.0)

        def send(size):
            return net.transfer(
                Message(kind="x", src=0, dst=1, created_at=15.0, size=size),
                net.nodes[0],
                net.nodes[1],
            )

        assert send(600)
        assert not send(600)  # only 400 bytes left
        assert send(400)
        assert not send(1)
        assert net.stats.counter_value("net.transfer_rejected_bandwidth") == 2

    def test_budget_resets_on_new_contact(self):
        link = BandwidthLimitedLink(bandwidth_bps=800.0)
        trace = ContactTrace(
            [Contact.make(0, 1, 0.0, 10.0), Contact.make(0, 1, 50.0, 60.0)],
            node_ids=[0, 1],
        )
        net = build_network(trace, link_model=link)
        net.nodes[1].add_handler(Sink())
        net.start()
        net.sim.run(until=5.0)
        assert net.transfer(
            Message(kind="x", src=0, dst=1, created_at=5.0, size=1000),
            net.nodes[0], net.nodes[1],
        )
        net.sim.run(until=55.0)
        assert net.transfer(
            Message(kind="x", src=0, dst=1, created_at=55.0, size=1000),
            net.nodes[0], net.nodes[1],
        )

    def test_invalid_bandwidth(self):
        import pytest

        with pytest.raises(ValueError):
            BandwidthLimitedLink(0.0)


class TestBandwidthBudgetRelease:
    """Per-pair budgets must be dropped when the contact closes, not
    accumulate for the lifetime of the simulation."""

    def test_budget_released_after_contact_end(self):
        link = BandwidthLimitedLink(bandwidth_bps=800.0)
        net = build_network(pair_trace(), link_model=link)
        net.start()
        net.sim.run(until=15.0)
        assert link.open_budgets == 1
        net.sim.run(until=25.0)
        assert link.open_budgets == 0

    def test_budget_released_when_node_goes_offline(self):
        link = BandwidthLimitedLink(bandwidth_bps=800.0)
        net = build_network(pair_trace(), link_model=link)
        net.start()
        net.sim.run(until=15.0)
        assert link.open_budgets == 1
        net.set_online(0, False)
        assert link.open_budgets == 0

    def test_no_leak_across_many_contacts(self):
        link = BandwidthLimitedLink(bandwidth_bps=800.0)
        contacts = [
            Contact.make(0, 1, float(10 * i), float(10 * i + 5))
            for i in range(20)
        ]
        net = build_network(
            ContactTrace(contacts, node_ids=[0, 1]), link_model=link
        )
        net.start()
        net.sim.run()
        assert link.open_budgets == 0

    def test_contact_closed_tolerates_unknown_pair(self):
        link = BandwidthLimitedLink(bandwidth_bps=800.0)
        link.contact_closed(7, 9)  # never opened: must be a no-op
        link.contact_closed(7, 9)  # and idempotent
        assert link.open_budgets == 0


class TestOnlineListeners:
    def test_listener_sees_every_state_flip(self):
        net = build_network(pair_trace())
        events = []
        net.add_online_listener(lambda nid, online, now: events.append((nid, online, now)))
        net.start()
        net.sim.run(until=15.0)
        net.set_online(0, False)
        net.set_online(0, False)  # no change: must not re-fire
        net.set_online(0, True)
        assert events == [(0, False, 15.0), (0, True, 15.0)]

    def test_going_offline_closes_open_contacts(self):
        net = build_network(pair_trace())
        closed = []
        net.add_online_listener(lambda nid, online, now: closed.append(online))
        net.start()
        net.sim.run(until=15.0)
        assert net.nodes[1].in_contact_with(0)
        net.set_online(0, False)
        assert not net.nodes[1].in_contact_with(0)
        assert closed == [False]
