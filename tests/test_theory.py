"""Property and integration tests for the analytical freshness model."""

import math

import numpy as np
import pytest

from repro.caching.items import DataCatalog
from repro.contacts.rates import RateTable
from repro.core.hierarchy import RefreshTree
from repro.core.replication import (
    contact_probability,
    expected_fresh_fraction,
    two_hop_probability,
)
from repro.theory import (
    DelayDistribution,
    FreshnessModel,
    ModelReport,
    agreement_band,
    compare,
    edge_delivery_cdf,
    measured_values,
    relay_path_probability,
)


def exponential_distribution(rate, horizon=40.0):
    return DelayDistribution.from_function(
        lambda t: contact_probability(rate, t), horizon=horizon
    )


class TestClosedFormProperties:
    @pytest.mark.parametrize("rate", [0.1, 1.0, 5.0])
    def test_edge_cdf_monotone_in_window(self, rate):
        values = [edge_delivery_cdf(rate, [], t) for t in np.linspace(0, 10, 50)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_edge_cdf_monotone_in_rate(self):
        t = 2.0
        values = [edge_delivery_cdf(r, [], t) for r in np.linspace(0.01, 5, 50)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_edge_cdf_approaches_one(self):
        assert edge_delivery_cdf(0.5, [], 1e4) == pytest.approx(1.0)
        assert edge_delivery_cdf(0.0, [(1.0, 1.0)], 1e4) == pytest.approx(1.0)

    def test_relays_only_help(self):
        with_relay = edge_delivery_cdf(0.5, [(1.0, 1.0)], 2.0)
        without = edge_delivery_cdf(0.5, [], 2.0)
        assert with_relay >= without

    def test_relay_path_first_stage_is_two_hop(self):
        assert relay_path_probability(2.0, 1, 0.7, 1.5) == pytest.approx(
            two_hop_probability(2.0, 0.7, 1.5)
        )

    def test_relay_path_later_recruits_deliver_later(self):
        # Erlang(i+1) waits dominate Erlang(i) stochastically.
        for t in (0.5, 1.0, 3.0, 10.0):
            probs = [relay_path_probability(2.0, i, 0.8, t) for i in (1, 2, 3)]
            assert probs[0] >= probs[1] >= probs[2]

    def test_relay_path_equal_rates_erlang(self):
        # pool == delivery rate: the path delay is Erlang(stages + 1).
        rate, t = 1.3, 2.0
        expected = 1.0 - math.exp(-rate * t) * sum(
            (rate * t) ** n / math.factorial(n) for n in range(3)
        )
        assert relay_path_probability(rate, 2, rate, t) == pytest.approx(expected)

    def test_relay_path_matches_monte_carlo(self):
        rng = np.random.default_rng(3)
        pool, stages, mu, t = 1.5, 3, 0.6, 4.0
        sample = rng.gamma(stages, 1 / pool, 200_000) + rng.exponential(
            1 / mu, 200_000
        )
        assert relay_path_probability(pool, stages, mu, t) == pytest.approx(
            float((sample <= t).mean()), abs=0.005
        )


class TestDelayDistribution:
    def test_convolution_matches_hypoexponential(self):
        a = exponential_distribution(1.0)
        b = DelayDistribution.from_function(
            lambda t: contact_probability(2.0, t), horizon=40.0
        )
        two = a.convolve(b)
        for t in (0.5, 1.0, 2.0, 5.0):
            assert two.at(t) == pytest.approx(
                two_hop_probability(1.0, 2.0, t), abs=1e-3
            )

    def test_fresh_fraction_matches_closed_form(self):
        for rate_x_interval in (0.3, 1.0, 4.0):
            rate = rate_x_interval / 2.0
            dist = exponential_distribution(rate, horizon=40.0)
            assert dist.fresh_fraction(2.0) == pytest.approx(
                expected_fresh_fraction(rate, 2.0), abs=5e-4
            )

    def test_fresh_fraction_monotone_in_rate(self):
        fractions = [
            exponential_distribution(rate).fresh_fraction(2.0)
            for rate in (0.1, 0.5, 1.0, 3.0)
        ]
        assert all(b > a for a, b in zip(fractions, fractions[1:]))

    def test_valid_fraction_bounds_and_monotonicity(self):
        dist = exponential_distribution(0.8, horizon=60.0)
        values = [dist.valid_fraction(2.0, lifetime) for lifetime in (2.0, 4.0, 8.0)]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert values[0] <= values[1] <= values[2]
        assert dist.valid_fraction(2.0, 4.0) >= dist.fresh_fraction(2.0)

    def test_valid_fraction_approaches_one_with_long_lifetime(self):
        dist = exponential_distribution(0.8, horizon=60.0)
        assert dist.valid_fraction(2.0, 500.0) > 0.99


class TestFreshnessModel:
    def chain_model(self, rate01=1.0, rate12=0.5, interval=1.0):
        rates = RateTable({(0, 1): rate01, (1, 2): rate12})
        tree = RefreshTree(root=0)
        tree.attach(1, 0)
        tree.attach(2, 1)
        catalog = DataCatalog.uniform(
            num_items=1, sources=[0], refresh_interval=interval,
            lifetime=2 * interval,
        )
        return FreshnessModel(rates, {0: tree}, {}, catalog)

    def test_depth_one_reduces_to_closed_forms(self):
        prediction = self.chain_model().predict()
        p1 = prediction.nodes[(0, 1)]
        assert p1.on_time == pytest.approx(contact_probability(1.0, 1.0), abs=1e-4)
        assert p1.fresh == pytest.approx(
            expected_fresh_fraction(1.0, 1.0), abs=1e-4
        )

    def test_depth_two_is_hop_convolution(self):
        prediction = self.chain_model().predict()
        p2 = prediction.nodes[(0, 2)]
        assert p2.on_time == pytest.approx(
            two_hop_probability(1.0, 0.5, 1.0), abs=1e-3
        )
        assert p2.depth == 2

    def test_on_time_monotone_in_interval(self):
        values = [
            self.chain_model(interval=w).predict().on_time_ratio
            for w in (0.5, 1.0, 2.0, 8.0)
        ]
        assert all(b > a for a, b in zip(values, values[1:]))
        assert values[-1] > 0.95  # window -> infinity: delivery certain

    def test_deeper_nodes_are_staler(self):
        prediction = self.chain_model().predict()
        assert prediction.nodes[(0, 1)].fresh > prediction.nodes[(0, 2)].fresh

    def test_empty_trees_raise(self):
        rates = RateTable({})
        catalog = DataCatalog.uniform(
            num_items=1, sources=[0], refresh_interval=1.0, lifetime=2.0
        )
        with pytest.raises(ValueError):
            FreshnessModel(rates, {}, {}, catalog)

    def test_summary_keys_match_run_metrics_fields(self):
        from repro.experiments.runner import RunMetrics

        metrics = RunMetrics(
            scheme="hdr", seed=1, freshness=0.0, validity=0.0, messages=0,
            messages_per_update=0.0, on_time_ratio=0.0, refresh_delay=0.0,
        )
        summary = self.chain_model().predict().summary()
        for name in summary:
            assert hasattr(metrics, name)


class TestFromRuntime:
    @pytest.fixture(scope="class")
    def runtime(self):
        from repro.core.scheme import build_simulation
        from repro.experiments import Settings
        from repro.experiments.runner import (
            choose_sources,
            make_catalog,
            make_trace,
        )

        settings = Settings.fast()
        trace = make_trace(settings, seed=1)
        catalog = make_catalog(settings, choose_sources(trace, settings))
        return build_simulation(
            trace, catalog, scheme="hdr",
            num_caching_nodes=settings.num_caching_nodes, seed=1,
        )

    def test_prediction_covers_every_tree_member(self, runtime):
        prediction = FreshnessModel.from_runtime(runtime).predict()
        expected = sum(len(tree.members) for tree in runtime.trees.values())
        assert len(prediction.nodes) == expected
        for p in prediction.nodes.values():
            assert 0.0 <= p.fresh <= p.valid <= 1.0
            assert 0.0 <= p.on_time <= 1.0

    def test_requesters_counted_like_schedule_queries(self, runtime):
        model = FreshnessModel.from_runtime(runtime, query_rate=1.0)
        expected = (
            len(runtime.nodes)
            - len(set(runtime.sources))
            - len(set(runtime.caching_nodes))
        )
        assert model.num_requesters == expected

    def test_epidemic_scheme_raises(self):
        from repro.core.scheme import build_simulation
        from repro.experiments import Settings
        from repro.experiments.runner import (
            choose_sources,
            make_catalog,
            make_trace,
        )

        settings = Settings.fast()
        trace = make_trace(settings, seed=1)
        catalog = make_catalog(settings, choose_sources(trace, settings))
        runtime = build_simulation(
            trace, catalog, scheme="flooding",
            num_caching_nodes=settings.num_caching_nodes, seed=1,
        )
        with pytest.raises(ValueError):
            FreshnessModel.from_runtime(runtime)


class TestValidation:
    def prediction(self):
        rates = RateTable({(0, 1): 1.0})
        tree = RefreshTree(root=0)
        tree.attach(1, 0)
        catalog = DataCatalog.uniform(
            num_items=1, sources=[0], refresh_interval=1.0, lifetime=2.0
        )
        return FreshnessModel(rates, {0: tree}, {}, catalog).predict()

    def test_band_grows_with_ks(self):
        assert agreement_band(0.0) == pytest.approx(0.05)
        assert agreement_band(0.1) > agreement_band(0.05) > agreement_band(0.0)
        with pytest.raises(ValueError):
            agreement_band(-0.1)

    def test_compare_without_measurements_is_vacuous(self):
        report = compare(self.prediction())
        assert report.agreement
        assert math.isnan(report.max_error)

    def test_compare_flags_out_of_band_metric(self):
        prediction = self.prediction()
        measured = dict(prediction.summary())
        measured["freshness"] += 0.5
        report = compare(prediction, measured, tolerance=0.1)
        assert not report.agreement
        assert report.max_error == pytest.approx(0.5)
        row = next(r for r in report.rows if r.metric == "freshness")
        assert not row.within

    def test_measured_values_from_registry_snapshot(self):
        snapshot = {
            "counters": {},
            "gauges": {
                "probe.fresh_slots": 3,
                "probe.valid_slots": 4,
                "probe.total_slots": 8,
            },
        }
        values = measured_values(snapshot)
        assert values == {"freshness": 0.375, "validity": 0.5}

    def test_records_round_trip_through_jsonl(self, tmp_path):
        from repro.obs.export import load_trace, write_jsonl

        prediction = self.prediction()
        report = compare(prediction, prediction.summary(), tolerance=0.05)
        path = tmp_path / "model.jsonl"
        write_jsonl(report.records(time=42.0), path)
        records = load_trace(path)
        assert len(records) == len(report.rows)
        assert all(r.kind == "model.predict" for r in records)
        assert records[0].time == 42.0
        assert records[0].error == pytest.approx(0.0)

    def test_report_format_mentions_tolerance(self):
        report = compare(self.prediction(), tolerance=0.123)
        assert "0.123" in report.format()
        assert isinstance(report, ModelReport)


class TestExportJson:
    def test_prediction_payload_is_strict_json(self, tmp_path):
        import json

        from repro.analysis.export import export_json

        rates = RateTable({(0, 1): 1.0})
        tree = RefreshTree(root=0)
        tree.attach(1, 0)
        catalog = DataCatalog.uniform(
            num_items=1, sources=[0], refresh_interval=1.0, lifetime=2.0
        )
        prediction = FreshnessModel(rates, {0: tree}, {}, catalog).predict()
        path = tmp_path / "prediction.json"
        export_json(path, {"nan": float("nan"), **prediction.as_dict()})
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["nan"] is None  # strict JSON: non-finite -> null
        assert payload["summary"]["freshness"] == pytest.approx(
            expected_fresh_fraction(1.0, 1.0), abs=1e-4
        )
