"""Tests for the TOML scenario registry: loading and eager validation."""

import pytest

from repro.scenarios import (
    SCHEMA,
    ScenarioError,
    load_registry,
    load_scenario,
    validate_doc,
)

MINIMAL = """
[scenario]
name = "minimal"

[run]
schemes = ["hdr"]
"""

FULL = """
[scenario]
name = "full"
title = "Everything at once"
description = "Uses every table of the schema."

[settings]
profile = "small"
duration_hours = 24.0
seeds = [1, 2]
num_caching_nodes = 5
num_items = 4
num_sources = 1
refresh_interval_hours = 6.0
freshness_requirement = 0.9
lifetime_factor = 2.0
item_size = 512
query_rate_per_day = 4.0
zipf_exponent = 0.8
probe_interval_minutes = 20.0
warmup_fraction = 0.1
fanout = 3
max_depth = 3
max_relays = 5
refresh_jitter = 0.25

[run]
schemes = ["hdr", "flooding"]
with_queries = true
backend = "object"

[workload.diurnal]
activity = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
            1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]

[[workload.flash_crowds]]
start_hours = 10.0
length_hours = 2.0
boost = 5.0
focus = 2
focus_weight = 0.6

[caching.onpath]
strategy = "lcd"
capacity = 4

[faults.messages]
loss_rate = 0.05

[[grid.axes]]
key = "settings.refresh_interval_hours"
values = [6.0, 12.0]
"""


class TestLoadScenario:
    def test_minimal_round_trip(self, tmp_path):
        path = tmp_path / "minimal.toml"
        path.write_text(MINIMAL)
        scenario = load_scenario(path)
        assert scenario.name == "minimal"
        assert scenario.schemes == ("hdr",)
        assert scenario.path == str(path)
        assert scenario.doc["run"]["schemes"] == ["hdr"]

    def test_full_schema_round_trip(self, tmp_path):
        path = tmp_path / "full.toml"
        path.write_text(FULL)
        scenario = load_scenario(path)
        assert scenario.title == "Everything at once"
        assert scenario.doc["caching"]["onpath"]["strategy"] == "lcd"
        assert len(scenario.doc["workload"]["flash_crowds"]) == 1

    def test_parse_error_names_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[scenario\nname=")
        with pytest.raises(ScenarioError) as err:
            load_scenario(path)
        assert str(path) in str(err.value)
        assert "TOML parse error" in str(err.value)

    def test_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_scenario(tmp_path / "absent.toml")


class TestValidation:
    def test_unknown_key_names_table_and_key(self):
        errors = validate_doc(
            {"scenario": {"name": "x", "nam": "typo"},
             "run": {"schemes": ["hdr"]}}
        )
        assert any("[scenario]" in e and "'nam'" in e for e in errors)

    def test_unknown_table_rejected(self):
        errors = validate_doc(
            {"scenario": {"name": "x"}, "run": {"schemes": ["hdr"]},
             "settngs": {}}
        )
        assert any("[settngs]" in e for e in errors)

    def test_bad_type_names_key(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"]},
             "settings": {"num_items": "six"}}
        )
        assert any("[settings]" in e and "num_items" in e
                   and "expected integer" in e for e in errors)

    def test_bool_is_not_an_integer(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"]},
             "settings": {"num_items": True}}
        )
        assert any("num_items" in e for e in errors)

    def test_all_errors_collected_at_once(self):
        errors = validate_doc(
            {"scenario": {},
             "run": {"schemes": ["bogus"], "backend": "gpu"},
             "settings": {"profile": "nope", "duration_hours": -1}}
        )
        assert len(errors) >= 5
        joined = "\n".join(errors)
        assert "missing required key 'name'" in joined
        assert "bogus" in joined
        assert "'object' or 'soa'" in joined
        assert "unknown profile" in joined
        assert "must be positive" in joined

    def test_out_of_range_values(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"]},
             "settings": {"warmup_fraction": 1.0,
                          "freshness_requirement": 0.0}}
        )
        assert any("warmup_fraction" in e for e in errors)
        assert any("freshness_requirement" in e for e in errors)

    def test_cycle_requires_queries(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"]},
             "workload": {"diurnal": {}}}
        )
        assert errors == [
            "[workload]: diurnal/flash_crowds need [run] with_queries = true"
        ]

    def test_onpath_requires_queries(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"]},
             "caching": {"onpath": {"strategy": "lce"}}}
        )
        assert any("[caching.onpath]" in e and "with_queries" in e
                   for e in errors)

    def test_soa_restrictions(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"], "backend": "soa",
                     "with_queries": True},
             "placement": {"policy": "popularity"},
             "faults": {"messages": {"loss_rate": 0.1}}}
        )
        joined = "\n".join(errors)
        assert "does not support [run] with_queries" in joined
        assert "does not support [faults]" in joined
        assert "does not support [placement]" in joined

    def test_fault_errors_are_forwarded(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"]},
             "faults": {"messages": {"loss_rat": 0.1}}}
        )
        assert any(e.startswith("[faults]:") and "loss_rat" in e
                   for e in errors)

    def test_flash_crowd_missing_required(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"], "with_queries": True},
             "workload": {"flash_crowds": [{"boost": 2.0}]}}
        )
        joined = "\n".join(errors)
        assert "missing required key 'start_hours'" in joined
        assert "missing required key 'length_hours'" in joined

    def test_diurnal_activity_shape(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"], "with_queries": True},
             "workload": {"diurnal": {"activity": [1.0, 2.0]}}}
        )
        assert any("exactly 24" in e for e in errors)

    def test_grid_unsweepable_key(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"]},
             "grid": {"axes": [{"key": "scenario.name",
                                "values": ["a"]}]}}
        )
        assert any("not sweepable" in e for e in errors)

    def test_grid_values_typed_against_schema(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"]},
             "grid": {"axes": [{"key": "settings.num_items",
                                "values": [2, -3]}]}}
        )
        assert any("[grid.axes] #0" in e and "must be >= 1" in e
                   for e in errors)

    def test_grid_case_axis_validated(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"]},
             "grid": {"axes": [{"name": "engine",
                                "cases": [{"label": "bad",
                                           "overrides": {
                                               "run.backend": "gpu"}}]}]}}
        )
        assert any("case #0" in e and "run.backend" in e for e in errors)

    def test_grid_axis_must_pick_a_shape(self):
        errors = validate_doc(
            {"scenario": {"name": "x"},
             "run": {"schemes": ["hdr"]},
             "grid": {"axes": [{"name": "only-a-name"}]}}
        )
        assert any("either key+values" in e for e in errors)


class TestRegistry:
    def test_empty_directory(self, tmp_path):
        assert load_registry(tmp_path) == {}

    def test_duplicate_name_names_both_files(self, tmp_path):
        (tmp_path / "a.toml").write_text(MINIMAL)
        (tmp_path / "b.toml").write_text(MINIMAL)
        with pytest.raises(ScenarioError) as err:
            load_registry(tmp_path)
        message = str(err.value)
        assert "duplicate name 'minimal'" in message
        assert "a.toml" in message and "b.toml" in message

    def test_committed_scenarios_all_load(self):
        from pathlib import Path

        registry = load_registry(Path(__file__).resolve().parents[1]
                                 / "scenarios")
        assert len(registry) >= 6
        for scenario in registry.values():
            assert scenario.schemes


class TestSchemaDocs:
    def test_every_schema_key_is_documented(self):
        """docs/SCENARIOS.md must mention every table and key of the
        schema -- the registry's reference page cannot drift."""
        from pathlib import Path

        text = (Path(__file__).resolve().parents[1] / "docs"
                / "SCENARIOS.md").read_text(encoding="utf-8")
        for row in SCHEMA:
            assert f"`{row.key}`" in text, (
                f"docs/SCENARIOS.md does not document {row.table}.{row.key}"
            )
        for table in ("[scenario]", "[settings]", "[run]",
                      "[workload.diurnal]", "[caching.onpath]",
                      "[placement]", "[faults]", "[grid]"):
            assert table in text, (
                f"docs/SCENARIOS.md does not document the {table} table"
            )
        assert "[[workload.flash_crowds]]" in text
        assert "[[grid.axes]]" in text


class TestSchemaIntrospection:
    def test_every_schema_key_has_doc_and_type(self):
        for row in SCHEMA:
            assert row.doc, f"{row.table}.{row.key} lacks documentation"
            assert row.type in {
                "string", "boolean", "integer", "float",
                "array of integers", "array of floats", "array of strings",
            }

    def test_schema_keys_unique_per_table(self):
        seen = set()
        for row in SCHEMA:
            assert (row.table, row.key) not in seen
            seen.add((row.table, row.key))
