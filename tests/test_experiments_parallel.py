"""Tests for the parallel runner and the per-seed artifact cache."""

import os

import pytest

from repro.experiments import Settings
from repro.experiments.artifacts import (
    artifacts_for_trace,
    cache_clear,
    cache_info,
    seed_artifacts,
    sources_from_ranking,
)
from repro.experiments.parallel import (
    JOBS_ENV_VAR,
    SweepPoint,
    resolve_jobs,
    run_sweep,
    run_tasks,
)
from repro.experiments.runner import RunMetrics, run_replicated


@pytest.fixture(scope="module")
def settings():
    return Settings.fast()


@pytest.fixture(autouse=True)
def fresh_cache():
    cache_clear()
    yield
    cache_clear()


def _square(x):
    return x * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(3) == 3

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs() == 5

    @pytest.mark.parametrize("raw", ["auto", "max", "0", "-1", "AUTO"])
    def test_auto_values_mean_cpu_count(self, monkeypatch, raw):
        monkeypatch.setenv(JOBS_ENV_VAR, raw)
        assert resolve_jobs() == (os.cpu_count() or 1)

    @pytest.mark.parametrize("jobs", [0, -1])
    def test_zero_and_minus_one_mean_cpu_count(self, jobs):
        assert resolve_jobs(jobs) == (os.cpu_count() or 1)

    def test_invalid_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "plenty")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            resolve_jobs(-3)


class TestRunTasks:
    def test_serial_preserves_order(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert run_tasks(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        assert run_tasks(_square, list(range(10)), jobs=3) == [
            x * x for x in range(10)
        ]

    def test_single_spec_bypasses_pool(self):
        assert run_tasks(_square, [7], jobs=4) == [49]


class TestArtifactCache:
    def test_repeat_lookup_returns_same_object(self, settings):
        first = seed_artifacts(settings, 1)
        second = seed_artifacts(settings, 1)
        assert first is second
        assert cache_info()["entries"] == 1

    def test_different_seeds_are_distinct(self, settings):
        assert seed_artifacts(settings, 1) is not seed_artifacts(settings, 2)

    def test_key_ignores_sweep_parameters(self, settings):
        base = seed_artifacts(settings, 1)
        tweaked = seed_artifacts(
            settings.with_(refresh_interval=123.0, num_caching_nodes=3), 1
        )
        assert base is tweaked  # trace depends only on (profile, duration, seed)

    def test_artifacts_for_trace_identity_lookup(self, settings):
        art = seed_artifacts(settings, 1)
        assert artifacts_for_trace(art.trace) is art
        assert artifacts_for_trace(object()) is None

    def test_sources_median_slice(self):
        ranking = tuple(range(10))
        assert sources_from_ranking(ranking, 2) == sorted(ranking[5:7])
        assert sources_from_ranking(ranking, 3) == sorted(ranking[5:8])

    def test_sources_fall_back_to_tail(self):
        assert sources_from_ranking((4, 2, 9), 3) == [2, 4, 9]


class TestParallelDeterminism:
    """jobs>1 must merge byte-identically to the serial loop."""

    SCHEMES = ("hdr", "source")

    @staticmethod
    def _assert_identical(serial, parallel):
        assert serial.keys() == parallel.keys()
        for scheme in serial:
            assert len(serial[scheme]) == len(parallel[scheme])
            for a, b in zip(serial[scheme], parallel[scheme]):
                assert a.same_as(b)

    def test_run_replicated_matches_serial(self, settings):
        serial = run_replicated(self.SCHEMES, settings, jobs=1)
        parallel = run_replicated(self.SCHEMES, settings, jobs=2)
        self._assert_identical(serial, parallel)

    def test_run_replicated_matches_serial_with_queries(self, settings):
        serial = run_replicated(self.SCHEMES, settings, with_queries=True,
                                jobs=1)
        parallel = run_replicated(self.SCHEMES, settings, with_queries=True,
                                  jobs=2)
        self._assert_identical(serial, parallel)

    def test_run_sweep_merge_structure(self, settings):
        points = [
            SweepPoint(settings=settings, schemes=self.SCHEMES),
            SweepPoint(settings=settings.with_(refresh_interval=7200.0),
                       schemes=("hdr",)),
        ]
        merged = run_sweep(points, jobs=2)
        assert len(merged) == 2
        assert set(merged[0]) == set(self.SCHEMES)
        assert set(merged[1]) == {"hdr"}
        for scheme, runs in merged[0].items():
            assert [m.seed for m in runs] == list(settings.seeds)
            assert all(m.scheme == scheme for m in runs)


class TestSameAs:
    def test_nan_fields_compare_equal(self):
        a = RunMetrics("hdr", 1, 0.5, 0.6, 10.0, 1.0, 0.9, 3.0)
        # distinct NaN objects, as a worker process would produce them
        # (the shared class-level NaN default hides the problem via the
        # identity shortcut in tuple comparison)
        b = RunMetrics("hdr", 1, 0.5, 0.6, 10.0, 1.0, 0.9, 3.0,
                       query_answer_ratio=float("nan"),
                       query_fresh_ratio=float("nan"))
        assert a != b  # computed NaNs break plain equality...
        assert a.same_as(b)  # ...which is exactly what same_as repairs

    def test_real_difference_detected(self):
        a = RunMetrics("hdr", 1, 0.5, 0.6, 10.0, 1.0, 0.9, 3.0)
        b = RunMetrics("hdr", 1, 0.4, 0.6, 10.0, 1.0, 0.9, 3.0)
        assert not a.same_as(b)
