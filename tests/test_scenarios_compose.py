"""Tests for scenario composition, including the metrics-identity proof:
a registry scenario produces RunMetrics `same_as`-identical to the
equivalent handwritten sweep."""

import tomllib

import pytest

from repro.caching.onpath import OnPathConfig
from repro.caching.placement import GeographicPlacement, PopularityPlacement
from repro.experiments.config import HOUR, Settings
from repro.experiments.parallel import SweepPoint, run_sweep
from repro.scenarios import (
    compose_scenario,
    cycle_from_doc,
    faults_from_doc,
    load_scenario,
    onpath_from_doc,
    placement_from_doc,
    settings_from_doc,
    sweep_point_from_doc,
)
from repro.workloads.cycles import DEFAULT_QUERY_ACTIVITY


def doc(text):
    return tomllib.loads(text)


class TestSettingsFromDoc:
    def test_defaults_without_settings_table(self):
        settings = settings_from_doc(
            doc('[scenario]\nname="x"\n[run]\nschemes=["hdr"]')
        )
        assert settings == Settings()

    def test_unit_conversions(self):
        settings = settings_from_doc(doc("""
            [settings]
            duration_hours = 48.0
            refresh_interval_hours = 6.0
            probe_interval_minutes = 20.0
            seeds = [7, 8]
        """))
        assert settings.duration == 48.0 * HOUR
        assert settings.refresh_interval == 6.0 * HOUR
        assert settings.probe_interval == 20.0 * 60.0
        assert settings.seeds == (7, 8)

    def test_passthrough_keys(self):
        settings = settings_from_doc(doc("""
            [settings]
            profile = "small"
            num_items = 3
            zipf_exponent = 1.2
            fanout = 2
        """))
        assert settings.profile == "small"
        assert settings.num_items == 3
        assert settings.zipf_exponent == 1.2
        assert settings.fanout == 2
        # unlisted keys keep library defaults
        assert settings.num_caching_nodes == Settings().num_caching_nodes


class TestPartConverters:
    def test_no_tables_mean_none(self):
        empty = doc('[scenario]\nname="x"\n[run]\nschemes=["hdr"]')
        assert cycle_from_doc(empty) is None
        assert onpath_from_doc(empty) is None
        assert placement_from_doc(empty) is None
        assert faults_from_doc(empty) is None

    def test_diurnal_default_activity(self):
        cycle = cycle_from_doc(doc("[workload.diurnal]"))
        assert cycle.diurnal.activity == DEFAULT_QUERY_ACTIVITY
        assert cycle.crowds == ()

    def test_flash_crowd_hours_to_seconds(self):
        cycle = cycle_from_doc(doc("""
            [[workload.flash_crowds]]
            start_hours = 10.0
            length_hours = 2.0
            boost = 5.0
        """))
        assert cycle.diurnal is None
        (crowd,) = cycle.crowds
        assert crowd.start == 10.0 * HOUR
        assert crowd.length == 2.0 * HOUR
        assert crowd.boost == 5.0

    def test_onpath(self):
        config = onpath_from_doc(doc("""
            [caching.onpath]
            strategy = "lcd"
            capacity = 4
        """))
        assert config == OnPathConfig(strategy="lcd", capacity=4)

    def test_placement_families(self):
        pop = placement_from_doc(doc("""
            [placement]
            policy = "popularity"
            s = 1.0
            budget_fraction = 0.25
        """))
        assert pop == PopularityPlacement(s=1.0, budget_fraction=0.25)
        geo = placement_from_doc(doc("""
            [placement]
            policy = "geographic"
            spread_quantile = 0.6
        """))
        assert geo == GeographicPlacement(spread_quantile=0.6)

    def test_faults(self):
        plan = faults_from_doc(doc("""
            [faults.messages]
            loss_rate = 0.05
        """))
        assert plan.loss_rate == 0.05


SCENARIO_E4_STYLE = """
[scenario]
name = "e4-twin"
title = "Declarative twin of one E4 fast point"

[settings]
profile = "small"
duration_hours = 72.0
seeds = [1, 2]
num_caching_nodes = 5
num_items = 4
num_sources = 1
refresh_interval_hours = 2.0
probe_interval_minutes = 20.0

[run]
schemes = ["hdr", "source"]
"""


class TestMetricsIdentity:
    def test_scenario_matches_handwritten_sweep(self, tmp_path):
        """The acceptance-criteria proof: running a registry scenario is
        RunMetrics-identical (same_as, NaN-aware) to the handwritten
        SweepPoint an experiment module would build for the same
        configuration -- here the shape of E4's fast preset at one
        refresh interval."""
        path = tmp_path / "e4-twin.toml"
        path.write_text(SCENARIO_E4_STYLE)
        _, sweep_points = compose_scenario(load_scenario(path))
        handwritten = SweepPoint(
            settings=Settings.fast().with_(refresh_interval=2.0 * HOUR,
                                           seeds=(1, 2)),
            schemes=("hdr", "source"),
        )
        assert sweep_points == [handwritten]
        (from_scenario,) = run_sweep(sweep_points)
        (from_code,) = run_sweep([handwritten])
        assert set(from_scenario) == set(from_code) == {"hdr", "source"}
        for scheme, runs in from_code.items():
            assert len(from_scenario[scheme]) == len(runs)
            for mine, theirs in zip(from_scenario[scheme], runs):
                assert mine.same_as(theirs)

    def test_soa_point_matches_object_point(self, tmp_path):
        """The committed parity scenario really is metric-identical
        across engines."""
        from pathlib import Path

        scenario = load_scenario(Path(__file__).resolve().parents[1]
                                 / "scenarios" / "soa-baseline.toml")
        grid_points, sweep_points = compose_scenario(scenario)
        assert [p.label for p in grid_points] == ["engine=object",
                                                  "engine=soa"]
        quick = [
            SweepPoint(
                settings=p.settings.with_(duration=24 * HOUR, seeds=(1,)),
                schemes=("hdr",),
                backend=p.backend,
            )
            for p in sweep_points
        ]
        object_runs, soa_runs = run_sweep(quick)
        for mine, theirs in zip(object_runs["hdr"], soa_runs["hdr"]):
            assert mine.same_as(theirs)


class TestComposeErrors:
    def test_bad_scheme_surfaces_before_any_run(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('[scenario]\nname="bad"\n[run]\nschemes=["nope"]')
        from repro.scenarios import ScenarioError

        with pytest.raises(ScenarioError) as err:
            compose_scenario(load_scenario(path))
        assert "nope" in str(err.value)

    def test_sweep_point_defaults(self):
        point = sweep_point_from_doc(
            doc('[scenario]\nname="x"\n[run]\nschemes=["hdr"]')
        )
        assert point.backend == "object"
        assert point.with_queries is False
        assert point.fault_plan is None
        assert point.placement is None
        assert point.onpath is None
        assert point.cycle is None
