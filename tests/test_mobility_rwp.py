"""Tests for the random-waypoint spatial model."""

import numpy as np
import pytest

from repro.mobility.rwp import RandomWaypointModel


class TestRandomWaypoint:
    def test_positions_stay_in_area(self, rng):
        model = RandomWaypointModel(n=5, area=100.0, sample_interval=5.0, pause_max=0.0)
        positions = model.positions(500.0, rng)
        assert positions.shape == (101, 5, 2)
        assert (positions >= 0).all()
        assert (positions <= 100.0).all()

    def test_speed_respected(self, rng):
        model = RandomWaypointModel(
            n=3, area=1000.0, speed_min=1.0, speed_max=2.0,
            sample_interval=10.0, pause_max=0.0,
        )
        positions = model.positions(1000.0, rng)
        steps = np.linalg.norm(np.diff(positions, axis=0), axis=2)
        # max displacement per 10 s sample is speed_max * dt (plus tiny slack)
        assert steps.max() <= 2.0 * 10.0 + 1e-6

    def test_contacts_from_proximity(self, rng):
        model = RandomWaypointModel(
            n=10, area=200.0, radio_range=50.0, sample_interval=10.0
        )
        trace = model.generate(2000.0, rng)
        assert len(trace) > 0
        for c in trace:
            assert c.duration >= model.sample_interval - 1e-9

    def test_denser_area_more_contacts(self):
        sparse = RandomWaypointModel(n=8, area=2000.0, radio_range=30.0)
        dense = RandomWaypointModel(n=8, area=200.0, radio_range=30.0)
        n_sparse = len(sparse.generate(3000.0, np.random.default_rng(1)))
        n_dense = len(dense.generate(3000.0, np.random.default_rng(1)))
        assert n_dense > n_sparse

    def test_open_contacts_closed_at_horizon(self, rng):
        model = RandomWaypointModel(n=6, area=50.0, radio_range=100.0)
        trace = model.generate(100.0, rng)
        # everyone is always in range: one contact per pair spanning the run
        assert len(trace) == 15
        assert all(c.end <= 100.0 for c in trace)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(n=1)
        with pytest.raises(ValueError):
            RandomWaypointModel(n=3, speed_min=0.0)
        with pytest.raises(ValueError):
            RandomWaypointModel(n=3, speed_min=3.0, speed_max=2.0)
        with pytest.raises(ValueError):
            RandomWaypointModel(n=3, radio_range=0.0)
