"""Tests for the probabilistic replication analysis (closed forms)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.replication import (
    contact_probability,
    decompose_requirement,
    expected_fresh_fraction,
    plan_edge,
    required_direct_rate,
    two_hop_probability,
)

rates = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)
windows = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False)


class TestContactProbability:
    def test_known_value(self):
        assert contact_probability(1.0, 1.0) == pytest.approx(1 - math.exp(-1))

    def test_zero_rate(self):
        assert contact_probability(0.0, 100.0) == 0.0

    def test_zero_window(self):
        assert contact_probability(5.0, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            contact_probability(-1.0, 1.0)
        with pytest.raises(ValueError):
            contact_probability(1.0, -1.0)

    @given(rates, rates, windows)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_rate_and_window(self, r1, r2, w):
        lo, hi = sorted((r1, r2))
        assert contact_probability(lo, w) <= contact_probability(hi, w) + 1e-12
        assert 0.0 <= contact_probability(r1, w) <= 1.0


class TestTwoHopProbability:
    def test_equal_rates_closed_form(self):
        lam, window = 2.0, 1.5
        x = lam * window
        expected = 1 - math.exp(-x) * (1 + x)
        assert two_hop_probability(lam, lam, window) == pytest.approx(expected)

    def test_matches_monte_carlo(self, rng):
        r1, r2, window = 0.8, 0.3, 2.0
        samples = rng.exponential(1 / r1, 200_000) + rng.exponential(1 / r2, 200_000)
        empirical = (samples <= window).mean()
        assert two_hop_probability(r1, r2, window) == pytest.approx(empirical, abs=0.005)

    def test_zero_leg_never_delivers(self):
        assert two_hop_probability(0.0, 5.0, 100.0) == 0.0
        assert two_hop_probability(5.0, 0.0, 100.0) == 0.0

    def test_symmetric_in_legs(self):
        assert two_hop_probability(0.5, 2.0, 3.0) == pytest.approx(
            two_hop_probability(2.0, 0.5, 3.0)
        )

    def test_slower_than_single_hop(self):
        """Two sequential meetings take longer than the slower one alone."""
        assert two_hop_probability(1.0, 1.0, 2.0) < contact_probability(1.0, 2.0)

    def test_near_equal_rates_continuous(self):
        base = two_hop_probability(1.0, 1.0, 2.0)
        near = two_hop_probability(1.0, 1.0 + 1e-10, 2.0)
        assert near == pytest.approx(base, abs=1e-6)

    @given(rates, rates, windows)
    @settings(max_examples=100, deadline=None)
    def test_is_probability(self, r1, r2, w):
        p = two_hop_probability(r1, r2, w)
        assert 0.0 <= p <= 1.0

    @given(rates, rates, rates, windows)
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_first_leg(self, r1a, r1b, r2, w):
        lo, hi = sorted((r1a, r1b))
        assert two_hop_probability(lo, r2, w) <= two_hop_probability(hi, r2, w) + 1e-9


class TestDecomposeRequirement:
    def test_depth_one_identity(self):
        assert decompose_requirement(0.9, 1) == 0.9

    def test_product_recovers_requirement(self):
        per_hop = decompose_requirement(0.9, 3)
        assert per_hop**3 == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            decompose_requirement(1.0, 2)
        with pytest.raises(ValueError):
            decompose_requirement(0.5, 0)

    @given(st.floats(min_value=0.01, max_value=0.99), st.integers(min_value=1, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_per_hop_exceeds_end_to_end(self, p, d):
        assert decompose_requirement(p, d) >= p - 1e-12


class TestRequiredDirectRate:
    def test_inverts_contact_probability(self):
        rate = required_direct_rate(0.9, 100.0)
        assert contact_probability(rate, 100.0) == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_direct_rate(0.0, 1.0)
        with pytest.raises(ValueError):
            required_direct_rate(0.5, 0.0)


class TestExpectedFreshFraction:
    def test_zero_rate(self):
        assert expected_fresh_fraction(0.0, 100.0) == 0.0

    def test_fast_refresher_approaches_one(self):
        assert expected_fresh_fraction(100.0, 100.0) > 0.99

    def test_matches_simulation(self, rng):
        """Renewal simulation of the fresh/stale cycle."""
        rate, interval = 0.02, 100.0
        fresh_time = 0.0
        cycles = 20000
        delays = rng.exponential(1 / rate, cycles)
        fresh_time = np.clip(interval - delays, 0.0, None).sum()
        assert expected_fresh_fraction(rate, interval) == pytest.approx(
            fresh_time / (cycles * interval), abs=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_fresh_fraction(-1.0, 1.0)
        with pytest.raises(ValueError):
            expected_fresh_fraction(1.0, 0.0)


class TestPlanEdge:
    def candidates(self, count=10, up=0.5, down=0.5):
        return [(100 + k, up, down) for k in range(count)]

    def test_strong_direct_needs_no_relays(self):
        plan = plan_edge(0, 1, direct_rate=10.0, relay_candidates=self.candidates(),
                         window=10.0, target=0.9)
        assert plan.num_relays == 0
        assert plan.meets_target

    def test_weak_direct_recruits_until_target(self):
        plan = plan_edge(0, 1, direct_rate=0.001,
                         relay_candidates=self.candidates(up=2.0, down=2.0),
                         window=1.0, target=0.9)
        assert plan.num_relays > 0
        assert plan.meets_target
        assert plan.achieved >= 0.9

    def test_budget_caps_relays(self):
        plan = plan_edge(0, 1, direct_rate=0.0, relay_candidates=self.candidates(up=0.1, down=0.1),
                         window=1.0, target=0.99, max_relays=2)
        assert plan.num_relays == 2
        assert not plan.meets_target

    def test_achieved_combines_miss_probabilities(self):
        plan = plan_edge(0, 1, direct_rate=0.5, relay_candidates=self.candidates(count=2),
                         window=1.0, target=0.999, max_relays=8)
        miss = 1.0 - plan.direct_probability
        for p in plan.relay_probabilities:
            miss *= 1.0 - p
        assert plan.achieved == pytest.approx(1.0 - miss)

    def test_best_relays_first(self):
        candidates = [(10, 0.1, 0.1), (11, 5.0, 5.0), (12, 1.0, 1.0)]
        plan = plan_edge(0, 1, direct_rate=0.0, relay_candidates=candidates,
                         window=1.0, target=0.999999, max_relays=3)
        assert plan.relays[0] == 11
        assert plan.relay_probabilities == sorted(plan.relay_probabilities, reverse=True)

    def test_endpoints_excluded_as_relays(self):
        candidates = [(0, 9.0, 9.0), (1, 9.0, 9.0), (2, 1.0, 1.0)]
        plan = plan_edge(0, 1, direct_rate=0.0, relay_candidates=candidates,
                         window=1.0, target=0.9999, max_relays=5)
        assert 0 not in plan.relays
        assert 1 not in plan.relays

    def test_zero_quality_relays_skipped(self):
        candidates = [(10, 0.0, 5.0), (11, 5.0, 0.0)]
        plan = plan_edge(0, 1, direct_rate=0.1, relay_candidates=candidates,
                         window=1.0, target=0.9)
        assert plan.num_relays == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_edge(0, 1, 1.0, [], window=1.0, target=0.9, max_relays=-1)
        with pytest.raises(ValueError):
            plan_edge(0, 1, 1.0, [], window=1.0, target=1.0)

    @given(
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotonicity_properties(self, direct_rate, target, budget):
        candidates = [(100 + k, 0.3, 0.3) for k in range(10)]
        plan = plan_edge(0, 1, direct_rate, candidates, window=1.0,
                         target=target, max_relays=budget)
        assert plan.num_relays <= budget
        assert plan.achieved >= plan.direct_probability - 1e-12
        # a bigger budget never achieves less
        bigger = plan_edge(0, 1, direct_rate, candidates, window=1.0,
                           target=target, max_relays=budget + 2)
        assert bigger.achieved >= plan.achieved - 1e-12
        # a higher target never recruits fewer relays
        higher = plan_edge(0, 1, direct_rate, candidates, window=1.0,
                           target=min(0.99, target + 0.04), max_relays=budget)
        assert higher.num_relays >= plan.num_relays
