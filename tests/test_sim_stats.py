"""Tests for counters, tallies and time series."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import stats as stats_module
from repro.sim.stats import StatsRegistry, Tally, TimeSeries


class TestCounter:
    def test_add(self):
        stats = StatsRegistry()
        stats.counter("x").add()
        stats.counter("x").add(2.5)
        assert stats.counter_value("x") == 3.5

    def test_counter_value_default_does_not_create(self):
        stats = StatsRegistry()
        assert stats.counter_value("missing", default=7.0) == 7.0
        assert "missing" not in stats.counters()

    def test_counters_snapshot_sorted(self):
        stats = StatsRegistry()
        stats.counter("b").add(1)
        stats.counter("a").add(2)
        assert list(stats.counters()) == ["a", "b"]


class TestTally:
    def test_mean_and_bounds(self):
        tally = Tally("t")
        for v in [1.0, 2.0, 3.0]:
            tally.observe(v)
        assert tally.mean == pytest.approx(2.0)
        assert tally.min == 1.0
        assert tally.max == 3.0
        assert tally.count == 3

    def test_variance_matches_sample_variance(self):
        tally = Tally("t")
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for v in values:
            tally.observe(v)
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert tally.variance == pytest.approx(expected)
        assert tally.stdev == pytest.approx(math.sqrt(expected))

    def test_empty_tally_is_nan(self):
        tally = Tally("t")
        assert math.isnan(tally.mean)
        assert math.isnan(tally.variance)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_welford_agrees_with_direct(self, values):
        tally = Tally("t")
        for v in values:
            tally.observe(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert tally.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        assert tally.variance == pytest.approx(var, rel=1e-6, abs=1e-6)


class TestTallyPercentiles:
    def test_single_sample(self):
        tally = Tally("t")
        tally.observe(7.0)
        assert tally.p50 == 7.0
        assert tally.p95 == 7.0
        assert tally.percentile(0.0) == 7.0
        assert tally.percentile(100.0) == 7.0

    def test_empty_is_nan(self):
        assert math.isnan(Tally("t").p50)

    def test_interpolation(self):
        tally = Tally("t")
        for v in [1.0, 2.0, 3.0, 4.0]:
            tally.observe(v)
        assert tally.p50 == pytest.approx(2.5)
        assert tally.percentile(25.0) == pytest.approx(1.75)
        assert tally.percentile(100.0) == 4.0
        assert tally.percentile(0.0) == 1.0

    def test_rejects_out_of_range(self):
        tally = Tally("t")
        tally.observe(1.0)
        with pytest.raises(ValueError):
            tally.percentile(101.0)
        with pytest.raises(ValueError):
            tally.percentile(-0.5)

    def test_cache_invalidated_by_new_observation(self):
        tally = Tally("t")
        tally.observe(1.0)
        assert tally.p50 == 1.0  # primes the sorted cache
        tally.observe(3.0)
        assert tally.p50 == pytest.approx(2.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=80),
           st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_linear(self, values, q):
        import numpy as np

        tally = Tally("t")
        for v in values:
            tally.observe(v)
        expected = float(np.percentile(np.asarray(values), q))
        assert tally.percentile(q) == pytest.approx(expected, rel=1e-9, abs=1e-9)


class TestTimeSeries:
    def test_record_and_iterate(self):
        series = TimeSeries("s")
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert list(series) == [(1.0, 10.0), (2.0, 20.0)]
        assert len(series) == 2

    def test_mean(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(1.0, 3.0)
        assert series.mean() == 2.0

    def test_empty_mean_is_nan(self):
        assert math.isnan(TimeSeries("s").mean())

    def test_time_average_piecewise_constant(self):
        series = TimeSeries("s")
        series.record(0.0, 0.0)
        series.record(10.0, 1.0)  # value 0 held for 10 s
        # horizon 20: value 1 held for 10 s -> average 0.5
        assert series.time_average(horizon=20.0) == pytest.approx(0.5)

    def test_time_average_without_horizon_drops_last(self):
        series = TimeSeries("s")
        series.record(0.0, 4.0)
        series.record(2.0, 100.0)
        assert series.time_average() == pytest.approx(4.0)

    def test_time_average_single_sample(self):
        series = TimeSeries("s")
        series.record(5.0, 3.0)
        assert series.time_average() == 3.0


class TestRegistry:
    def test_instruments_created_once(self):
        stats = StatsRegistry()
        assert stats.series("s") is stats.series("s")
        assert stats.tally("t") is stats.tally("t")

    def test_all_series_and_tallies(self):
        stats = StatsRegistry()
        stats.series("a").record(0.0, 1.0)
        stats.tally("b").observe(2.0)
        assert set(stats.all_series()) == {"a"}
        assert set(stats.all_tallies()) == {"b"}


class TestGauge:
    def test_set_and_add(self):
        stats = StatsRegistry()
        gauge = stats.gauge("fresh")
        gauge.add()
        gauge.add(2.5)
        gauge.set(5.0)
        gauge.add(-1.5)
        assert stats.gauge_value("fresh") == 3.5

    def test_created_once(self):
        stats = StatsRegistry()
        assert stats.gauge("g") is stats.gauge("g")

    def test_gauge_value_default_does_not_create(self):
        stats = StatsRegistry()
        assert stats.gauge_value("missing", default=7.0) == 7.0
        assert stats.gauges() == {}

    def test_gauges_snapshot_is_sorted(self):
        stats = StatsRegistry()
        stats.gauge("b").set(2.0)
        stats.gauge("a").set(1.0)
        assert stats.gauges() == {"a": 1.0, "b": 2.0}
        assert list(stats.gauges()) == ["a", "b"]


class TestStreamingTally:
    """Reservoir mode: bounded memory, exact moments, estimated (but
    reproducible) percentiles."""

    def test_exact_mode_is_default(self):
        assert not stats_module.Tally("t").streaming

    def test_module_flag_controls_default(self, monkeypatch):
        monkeypatch.setattr(stats_module, "STREAMING_TALLIES", True)
        assert stats_module.Tally("t").streaming
        assert not stats_module.Tally("t", streaming=False).streaming

    def test_reservoir_is_bounded(self):
        tally = stats_module.Tally("bounded", streaming=True)
        for i in range(3 * stats_module.RESERVOIR_SIZE):
            tally.observe(float(i))
        assert len(tally._samples) == stats_module.RESERVOIR_SIZE
        assert tally.count == 3 * stats_module.RESERVOIR_SIZE

    def test_moments_stay_exact_in_streaming_mode(self):
        exact = stats_module.Tally("exact")
        streaming = stats_module.Tally("exact", streaming=True)
        values = [((i * 7919) % 1000) / 10.0
                  for i in range(2 * stats_module.RESERVOIR_SIZE)]
        for v in values:
            exact.observe(v)
            streaming.observe(v)
        assert streaming.count == exact.count
        assert streaming.mean == pytest.approx(exact.mean)
        assert streaming.variance == pytest.approx(exact.variance)
        assert streaming.min == exact.min
        assert streaming.max == exact.max

    def test_percentile_estimate_is_close(self):
        exact = stats_module.Tally("p", streaming=False)
        streaming = stats_module.Tally("p", streaming=True)
        for i in range(20 * stats_module.RESERVOIR_SIZE):
            value = float((i * 104729) % 100_000)
            exact.observe(value)
            streaming.observe(value)
        for q in (50.0, 95.0, 99.0):
            assert streaming.percentile(q) == pytest.approx(
                exact.percentile(q), rel=0.05
            )

    def test_streaming_is_reproducible(self):
        def fill(name):
            tally = stats_module.Tally(name, streaming=True)
            for i in range(3 * stats_module.RESERVOIR_SIZE):
                tally.observe(float((i * 31) % 977))
            return tally

        a, b = fill("same-name"), fill("same-name")
        assert a._samples == b._samples
        assert a.p99 == b.p99

    def test_below_reservoir_size_percentiles_are_exact(self):
        tally = stats_module.Tally("small", streaming=True)
        for v in (3.0, 1.0, 2.0):
            tally.observe(v)
        assert tally.p50 == 2.0
