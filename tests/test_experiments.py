"""Tests for the experiment harness (fast settings)."""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, Settings
from repro.experiments.runner import (
    RunMetrics,
    analytic_on_time,
    choose_sources,
    make_catalog,
    make_trace,
    run_once,
    run_replicated,
)


@pytest.fixture(scope="module")
def settings():
    return Settings.fast()


@pytest.fixture(scope="module")
def trace(settings):
    return make_trace(settings, seed=1)


class TestSettings:
    def test_fast_preset_is_small(self):
        fast = Settings.fast()
        assert fast.profile == "small"
        assert fast.duration < Settings().duration

    def test_with_overrides(self):
        tweaked = Settings().with_(num_items=9)
        assert tweaked.num_items == 9
        assert tweaked.profile == Settings().profile

    def test_derived_properties(self):
        base = Settings(refresh_interval=100.0, lifetime_factor=3.0,
                        query_rate_per_day=2.0)
        assert base.lifetime == 300.0
        assert base.query_rate == pytest.approx(2.0 / 86400.0)


class TestRunnerHelpers:
    def test_make_trace_deterministic(self, settings):
        a = make_trace(settings, seed=2)
        b = make_trace(settings, seed=2)
        assert len(a) == len(b)

    def test_choose_sources_midrank(self, settings, trace):
        sources = choose_sources(trace, settings)
        assert len(sources) == settings.num_sources
        assert set(sources) <= set(trace.node_ids)

    def test_make_catalog_uses_settings(self, settings, trace):
        catalog = make_catalog(settings, choose_sources(trace, settings))
        assert len(catalog) == settings.num_items
        item = catalog.get(0)
        assert item.refresh_interval == settings.refresh_interval
        assert item.lifetime == settings.lifetime

    def test_run_once_produces_metrics(self, settings, trace):
        metrics = run_once(trace, "hdr", settings, seed=1, with_queries=True)
        assert isinstance(metrics, RunMetrics)
        assert 0.0 <= metrics.freshness <= 1.0
        assert 0.0 <= metrics.on_time_ratio <= 1.0
        assert metrics.messages > 0
        assert metrics.queries_issued > 0

    def test_run_replicated_pairs_seeds(self, settings):
        short = settings.with_(seeds=(1, 2))
        results = run_replicated(["hdr", "source"], short)
        assert set(results) == {"hdr", "source"}
        assert [m.seed for m in results["hdr"]] == [1, 2]

    def test_analytic_on_time_in_unit_interval(self, settings, trace):
        from repro.core.scheme import build_simulation

        catalog = make_catalog(settings, choose_sources(trace, settings))
        runtime = build_simulation(trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        value = analytic_on_time(runtime)
        assert 0.0 <= value <= 1.0


class TestExperimentRegistry:
    def test_all_registered(self):
        assert set(EXPERIMENTS) == {f"E{k}" for k in range(1, 17)}

    @pytest.mark.parametrize("exp_id", ["E1", "E2"])
    def test_analysis_experiments_run(self, exp_id, settings):
        result = EXPERIMENTS[exp_id](settings)
        assert result.exp_id == exp_id
        assert result.text
        assert result.data

    def test_e3_series_has_all_schemes(self, settings):
        result = EXPERIMENTS["E3"](settings)
        assert set(result.data["series"]) == {
            "hdr", "flooding", "flat", "random", "source", "none"
        }
        for values in result.data["series"].values():
            assert len(values) == len(result.data["grid_hours"])

    def test_e6_overhead_ordering(self, settings):
        result = EXPERIMENTS["E6"](settings)
        flooding = result.data["flooding"]["messages"].mean
        hdr = result.data["hdr"]["messages"].mean
        source = result.data["source"]["messages"].mean
        assert flooding > hdr > source
