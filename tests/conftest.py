"""Shared fixtures: hand-built traces and wired mini-networks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility.trace import Contact, ContactTrace
from repro.sim.engine import Simulator
from repro.sim.network import ContactNetwork
from repro.sim.node import Node


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def tiny_trace() -> ContactTrace:
    """Four nodes, a handful of hand-placed contacts over 100 s."""
    contacts = [
        Contact.make(0, 1, 10.0, 20.0),
        Contact.make(1, 2, 30.0, 40.0),
        Contact.make(2, 3, 50.0, 60.0),
        Contact.make(0, 2, 70.0, 80.0),
        Contact.make(0, 1, 85.0, 95.0),
    ]
    return ContactTrace(contacts, node_ids=[0, 1, 2, 3], name="tiny")


@pytest.fixture
def line_trace() -> ContactTrace:
    """Repeating chain 0-1, 1-2, 2-3: data can flow 0 -> 3 in one sweep."""
    contacts = []
    for round_start in range(0, 1000, 100):
        contacts.append(Contact.make(0, 1, round_start + 10, round_start + 20))
        contacts.append(Contact.make(1, 2, round_start + 30, round_start + 40))
        contacts.append(Contact.make(2, 3, round_start + 50, round_start + 60))
    return ContactTrace(contacts, node_ids=[0, 1, 2, 3], name="line")


def build_network(trace: ContactTrace, **kwargs) -> ContactNetwork:
    """A simulator + bare nodes wired to replay ``trace``."""
    sim = Simulator()
    nodes = {nid: Node(nid) for nid in trace.node_ids}
    return ContactNetwork(sim, nodes, trace, **kwargs)


@pytest.fixture
def network_factory():
    return build_network
