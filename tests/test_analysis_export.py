"""Tests for CSV export of experiment results."""

import csv

import pytest

from repro.analysis.aggregate import Summary
from repro.analysis.export import export_result, export_rows, export_series
from repro.experiments.runner import ExperimentResult


def read_csv(path):
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.reader(handle))


class TestExportSeries:
    def test_writes_header_and_rows(self, tmp_path):
        path = export_series(
            tmp_path / "s.csv", "x", [1, 2], {"a": [0.5, 0.6], "b": [0.1, 0.2]}
        )
        rows = read_csv(path)
        assert rows[0] == ["x", "a", "b"]
        assert rows[1] == ["1", "0.5", "0.1"]
        assert rows[2] == ["2", "0.6", "0.2"]

    def test_short_series_padded(self, tmp_path):
        path = export_series(tmp_path / "s.csv", "x", [1, 2], {"a": [0.5]})
        rows = read_csv(path)
        assert rows[2] == ["2", ""]


class TestExportRows:
    def test_writes_dict_rows(self, tmp_path):
        path = export_rows(
            tmp_path / "t.csv",
            [{"scheme": "hdr", "value": 0.123456789}, {"scheme": "src", "value": 1}],
        )
        rows = read_csv(path)
        assert rows[0] == ["scheme", "value"]
        assert rows[1] == ["hdr", "0.123457"]

    def test_summary_cells_reduced_to_mean(self, tmp_path):
        path = export_rows(
            tmp_path / "t.csv",
            [{"k": Summary(mean=0.5, std=0.1, ci95=0.05, n=3)}],
        )
        assert read_csv(path)[1] == ["0.5"]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_rows(tmp_path / "t.csv", [])


class TestExportResult:
    def test_series_shape(self, tmp_path):
        result = ExperimentResult(
            exp_id="E4",
            title="t",
            text="",
            data={
                "intervals_h": [2.0, 6.0],
                "series": {"hdr": [0.3, 0.6], "source": [0.1, 0.2]},
            },
        )
        written = export_result(result, tmp_path)
        assert [p.name for p in written] == ["E4_series.csv"]
        rows = read_csv(written[0])
        assert rows[0] == ["intervals_h", "hdr", "source"]

    def test_row_shape(self, tmp_path):
        result = ExperimentResult(
            exp_id="E8",
            title="t",
            text="",
            data={"assignment": [{"scheme": "hdr", "freshness": 0.5}]},
        )
        written = export_result(result, tmp_path)
        assert [p.name for p in written] == ["E8_assignment.csv"]

    def test_unrecognised_shapes_skipped(self, tmp_path):
        result = ExperimentResult(
            exp_id="E1", title="t", text="", data={"stats": object()}
        )
        assert export_result(result, tmp_path) == []

    def test_cli_export_flag(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["run", "E1", "--fast", "--export", str(tmp_path)])
        assert code == 0  # E1's data shape has no exportable tables; ok

    def test_cli_export_writes_files(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["run", "E4", "--fast", "--export", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "E4_series.csv").exists()
