"""Tests for refresh hierarchy construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contacts.rates import RateTable
from repro.core.hierarchy import RefreshTree, build_tree, random_tree, star_tree


def chain_rates(nodes, rate=1.0):
    """Strong rates only along consecutive node pairs."""
    table = RateTable()
    for a, b in zip(nodes, nodes[1:]):
        table.set(a, b, rate)
    return table


class TestRefreshTree:
    def test_attach_and_lookup(self):
        tree = RefreshTree(root=0)
        tree.attach(1, 0)
        tree.attach(2, 1)
        assert tree.parent_of(2) == 1
        assert tree.children_of(0) == [1]
        assert tree.depth_of(2) == 2
        assert tree.max_depth == 2
        assert tree.members == {1, 2}
        assert tree.path_to_root(2) == [2, 1, 0]
        assert set(tree.edges()) == {(0, 1), (1, 2)}

    def test_attach_validation(self):
        tree = RefreshTree(root=0)
        with pytest.raises(ValueError):
            tree.attach(1, 99)  # unknown parent
        tree.attach(1, 0)
        with pytest.raises(ValueError):
            tree.attach(1, 0)  # already placed

    def test_detach_removes_subtree(self):
        tree = RefreshTree(root=0)
        tree.attach(1, 0)
        tree.attach(2, 1)
        tree.attach(3, 2)
        orphans = tree.detach(1)
        assert orphans == [2, 3]  # the whole subtree leaves the tree
        assert tree.members == set()
        assert tree.children_of(0) == []

    def test_detach_root_rejected(self):
        with pytest.raises(ValueError):
            RefreshTree(root=0).detach(0)

    def test_validate_passes_for_good_tree(self):
        tree = RefreshTree(root=0)
        tree.attach(1, 0)
        tree.attach(2, 0)
        tree.validate(fanout=2, max_depth=3)

    def test_validate_catches_corruption(self):
        tree = RefreshTree(root=0)
        tree.attach(1, 0)
        tree.depth[1] = 5  # corrupt
        with pytest.raises(ValueError):
            tree.validate()


class TestBuildTree:
    def test_follows_strong_edges(self):
        # chain 0-1-2-3 with strong consecutive rates: the built tree
        # should be the chain itself.
        rates = chain_rates([0, 1, 2, 3])
        tree = build_tree(0, [1, 2, 3], rates, fanout=3, max_depth=3)
        assert tree.parent_of(1) == 0
        assert tree.parent_of(2) == 1
        assert tree.parent_of(3) == 2

    def test_prefers_highest_rate_parent(self):
        table = RateTable({(0, 1): 1.0, (0, 2): 1.0, (1, 3): 5.0, (2, 3): 0.1})
        tree = build_tree(0, [1, 2, 3], table, fanout=2, max_depth=3)
        assert tree.parent_of(3) == 1

    def test_every_member_placed_exactly_once(self):
        rates = chain_rates(list(range(8)))
        tree = build_tree(0, range(1, 8), rates, fanout=2, max_depth=7)
        assert tree.members == set(range(1, 8))
        tree.validate(fanout=2, max_depth=7)

    def test_fanout_respected(self):
        table = RateTable()
        for child in range(1, 8):
            table.set(0, child, 1.0)
            for other in range(1, 8):
                if child < other:
                    table.set(child, other, 0.5)
        tree = build_tree(0, range(1, 8), table, fanout=2, max_depth=3, root_fanout=2)
        tree.validate(max_depth=3)
        assert len(tree.children_of(0)) <= 2
        for member in tree.members:
            assert len(tree.children_of(member)) <= 2

    def test_disconnected_node_gets_fallback_parent(self):
        rates = chain_rates([0, 1])
        tree = build_tree(0, [1, 9], rates, fanout=3, max_depth=2)
        assert 9 in tree.members
        assert tree.parent_of(9) is not None

    def test_capacity_check(self):
        with pytest.raises(ValueError, match="capacity"):
            build_tree(0, range(1, 100), RateTable(), fanout=2, max_depth=2)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_tree(0, [1], RateTable(), fanout=0)
        with pytest.raises(ValueError):
            build_tree(0, [1], RateTable(), max_depth=0)

    def test_root_excluded_from_members(self):
        rates = chain_rates([0, 1])
        tree = build_tree(0, [0, 1], rates)
        assert tree.members == {1}


class TestStarTree:
    def test_depth_one(self):
        tree = star_tree(5, [1, 2, 3])
        assert tree.max_depth == 1
        assert set(tree.children_of(5)) == {1, 2, 3}
        tree.validate()


class TestRandomTree:
    def test_respects_budgets(self):
        rng = np.random.default_rng(3)
        tree = random_tree(0, range(1, 14), rng, fanout=3, max_depth=3)
        tree.validate(fanout=3, max_depth=3)
        assert tree.members == set(range(1, 14))

    def test_different_seeds_differ(self):
        members = list(range(1, 14))
        a = random_tree(0, members, np.random.default_rng(1), fanout=2, max_depth=4)
        b = random_tree(0, members, np.random.default_rng(2), fanout=2, max_depth=4)
        assert a.parent != b.parent


@st.composite
def rate_tables(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    table = RateTable()
    for i in range(n):
        for j in range(i + 1, n):
            rate = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
            if rate > 0:
                table.set(i, j, rate)
    return n, table


class TestTreeProperties:
    @given(rate_tables(), st.integers(min_value=1, max_value=4),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_built_tree_invariants(self, n_and_rates, fanout, max_depth):
        n, rates = n_and_rates
        members = list(range(1, n))
        capacity = fanout
        level = fanout
        for _ in range(max_depth - 1):
            level *= fanout
            capacity += level
        if len(members) > capacity:
            return  # over-constrained by construction
        tree = build_tree(0, members, rates, fanout=fanout, max_depth=max_depth)
        tree.validate(fanout=fanout, max_depth=max_depth)
        assert tree.members == set(members)
        # every member's path reaches the root without repeats
        for member in tree.members:
            path = tree.path_to_root(member)
            assert path[-1] == 0
            assert len(path) == len(set(path))
            assert len(path) - 1 == tree.depth_of(member)
