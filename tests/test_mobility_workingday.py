"""Tests for the working-day behavioural mobility model."""

import numpy as np
import pytest

from repro.mobility.workingday import WorkingDayModel

DAY = 86400.0


@pytest.fixture
def model(rng):
    return WorkingDayModel(
        n=24, num_offices=3, num_spots=2, household_size=2,
        meeting_prob=0.2, evening_prob=0.3, rng=rng,
    )


class TestStructure:
    def test_households_are_shared_homes(self, model):
        assert model.household_of(0) == model.household_of(1)
        assert model.household_of(0) != model.household_of(2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            WorkingDayModel(n=1, rng=rng)
        with pytest.raises(ValueError):
            WorkingDayModel(n=4, num_offices=0, rng=rng)
        with pytest.raises(ValueError):
            WorkingDayModel(n=4, meeting_prob=1.5, rng=rng)
        with pytest.raises(ValueError):
            WorkingDayModel(n=4, contact_fraction=0.0, rng=rng)
        model = WorkingDayModel(n=4, rng=rng)
        with pytest.raises(ValueError):
            model.generate(0.0, rng)


class TestGeneratedTrace:
    def test_trace_valid(self, model, rng):
        trace = model.generate(3 * DAY, rng)
        assert len(trace) > 50
        for c in trace:
            assert c.end <= 3 * DAY
            assert c.duration > 0

    def test_commute_hours_have_no_contacts(self, model, rng):
        trace = model.generate(3 * DAY, rng)
        for c in trace:
            hour = int(c.start // 3600) % 24
            assert hour not in (8, 17)

    def test_household_members_meet_at_night(self, model, rng):
        trace = model.generate(3 * DAY, rng)
        night_contacts = [
            c for c in trace if (int(c.start // 3600) % 24) in range(0, 8)
        ]
        assert night_contacts
        for c in night_contacts:
            # at night only co-habitants (or spot stragglers ending late)
            # meet; check the household structure dominates
            pass
        same_home = sum(
            1 for c in night_contacts
            if model.household_of(c.a) == model.household_of(c.b)
        )
        assert same_home / len(night_contacts) > 0.95

    def test_office_mates_meet_more_than_strangers(self, rng):
        model = WorkingDayModel(
            n=30, num_offices=3, num_spots=2, household_size=1,
            meeting_prob=0.05, evening_prob=0.1, rng=rng,
        )
        trace = model.generate(5 * DAY, rng)
        office_pairs = stranger_pairs = 0
        office_contacts = stranger_contacts = 0
        counts = {pair: len(cs) for pair, cs in trace.pair_contacts().items()}
        for a in range(30):
            for b in range(a + 1, 30):
                c = counts.get((a, b), 0)
                if model.office_of(a) == model.office_of(b):
                    office_pairs += 1
                    office_contacts += c
                else:
                    stranger_pairs += 1
                    stranger_contacts += c
        assert office_contacts / office_pairs > 3 * (
            stranger_contacts / max(stranger_pairs, 1)
        )

    def test_deterministic_given_seed(self):
        def build(seed):
            rng = np.random.default_rng(seed)
            model = WorkingDayModel(n=10, rng=rng)
            return model.generate(2 * DAY, rng)

        a, b = build(5), build(5)
        assert len(a) == len(b)
        assert all(x.pair == y.pair and x.start == y.start for x, y in zip(a, b))

    def test_feeds_the_scheme_pipeline(self, rng):
        """The behavioural trace drives a full HDR run out-of-model."""
        from repro.caching.items import DataCatalog
        from repro.core.scheme import build_simulation

        model = WorkingDayModel(n=20, num_offices=2, num_spots=2,
                                household_size=2, rng=rng)
        trace = model.generate(4 * DAY, rng)
        catalog = DataCatalog.uniform(
            2, sources=[0], refresh_interval=24 * 3600.0
        )
        runtime = build_simulation(trace, catalog, scheme="hdr",
                                   num_caching_nodes=5, seed=1)
        runtime.install_freshness_probe(interval=3600.0, until=4 * DAY)
        runtime.run(until=4 * DAY)
        assert runtime.stats.series("probe.freshness").mean() > 0.2
