"""Tests for community and diurnal contact models."""

import numpy as np
import pytest

from repro.mobility.community import DEFAULT_ACTIVITY, CommunityModel, DiurnalModel
from repro.mobility.synthetic import homogeneous_rate_matrix


class TestCommunityModel:
    def test_generates_trace(self, rng):
        model = CommunityModel(
            n=20, num_communities=2, intra_rate=1e-3, inter_rate=1e-5, rng=rng
        )
        trace = model.generate(20000.0, rng)
        assert len(trace) > 0
        assert trace.num_nodes <= 20

    def test_membership_accessible(self, rng):
        model = CommunityModel(
            n=10, num_communities=3, intra_rate=1e-3, inter_rate=1e-5, rng=rng
        )
        communities = {model.community_of(i) for i in range(10)}
        assert communities <= {0, 1, 2}

    def test_intra_contacts_dominate(self, rng):
        model = CommunityModel(
            n=30, num_communities=3, intra_rate=1e-3, inter_rate=1e-6,
            rng=rng, hub_fraction=0.0,
        )
        trace = model.generate(50000.0, rng)
        intra = sum(
            1 for c in trace if model.community_of(c.a) == model.community_of(c.b)
        )
        assert intra / len(trace) > 0.9

    def test_mean_duration_exposed(self, rng):
        model = CommunityModel(
            n=5, num_communities=1, intra_rate=1e-3, inter_rate=1e-5,
            rng=rng, mean_duration=42.0,
        )
        assert model.mean_duration == 42.0


class TestDiurnalModel:
    def test_activity_profile_validated(self):
        with pytest.raises(ValueError):
            DiurnalModel(homogeneous_rate_matrix(3, 1e-3), activity=[0.5] * 10)
        with pytest.raises(ValueError):
            DiurnalModel(homogeneous_rate_matrix(3, 1e-3), activity=[1.5] * 24)

    def test_activity_at_wraps_daily(self):
        model = DiurnalModel(homogeneous_rate_matrix(3, 1e-3))
        assert model.activity_at(0.0) == DEFAULT_ACTIVITY[0]
        assert model.activity_at(9.5 * 3600) == DEFAULT_ACTIVITY[9]
        assert model.activity_at(86400.0 + 9.5 * 3600) == DEFAULT_ACTIVITY[9]

    def test_thinning_reduces_contacts(self, rng):
        rates = homogeneous_rate_matrix(10, 2e-4)
        flat = DiurnalModel(rates, activity=[1.0] * 24)
        thinned = DiurnalModel(rates, activity=[0.2] * 24)
        n_flat = len(flat.generate(200000.0, np.random.default_rng(1)))
        n_thinned = len(thinned.generate(200000.0, np.random.default_rng(1)))
        assert n_thinned < n_flat
        assert n_thinned / n_flat == pytest.approx(0.2, rel=0.25)

    def test_night_contacts_suppressed(self, rng):
        """With a hard day-only profile, no contact starts at night."""
        activity = [0.0] * 8 + [1.0] * 12 + [0.0] * 4
        model = DiurnalModel(homogeneous_rate_matrix(8, 5e-4), activity=activity)
        trace = model.generate(5 * 86400.0, rng)
        assert len(trace) > 0
        for c in trace:
            hour = int(c.start // 3600) % 24
            assert 8 <= hour < 20

    def test_effective_mean_activity(self):
        model = DiurnalModel(homogeneous_rate_matrix(3, 1e-3), activity=[0.5] * 24)
        assert model.effective_mean_activity() == 0.5
