"""Tests for dynamic hierarchy maintenance and churn."""

import numpy as np
import pytest

from repro.caching.items import DataCatalog
from repro.contacts.rates import RateTable
from repro.core.hierarchy import RefreshTree, build_tree
from repro.core.maintenance import (
    ChurnProcess,
    HierarchyManager,
    managers_for_runtime,
)
from repro.core.scheme import build_simulation
from repro.mobility.calibration import get_profile

DAY = 86400.0


def full_mesh_rates(n, rate=1.0):
    table = RateTable()
    for i in range(n):
        for j in range(i + 1, n):
            table.set(i, j, rate * (1 + 0.01 * (i + j)))
    return table


def make_manager(members=range(1, 8), fanout=3, max_depth=3, rates=None):
    rates = rates or full_mesh_rates(10)
    tree = build_tree(0, members, rates, fanout=fanout, max_depth=max_depth)
    plans = {}
    manager = HierarchyManager(
        item_id=0, tree=tree, rates=rates, plans=plans,
        window=3600.0, p_req=0.9, fanout=fanout, max_depth=max_depth,
        max_relays=3, all_nodes=tuple(range(10)),
    )
    # provision the initial edges like the builder would
    for parent, child in tree.edges():
        manager._replan_edge(parent, child)
    manager.stats.replanned_edges = 0
    return manager


class TestHierarchyManager:
    def test_add_member_attaches_and_plans(self):
        manager = make_manager(members=range(1, 5))
        parent = manager.add_member(8)
        assert manager.tree.parent_of(8) == parent
        assert (0, parent, 8) in manager.plans
        manager.tree.validate(max_depth=manager.max_depth)
        assert manager.stats.joins == 1

    def test_add_existing_member_rejected(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            manager.add_member(1)

    def test_remove_leaf(self):
        manager = make_manager()
        leaf = next(n for n in manager.tree.members if not manager.tree.children_of(n))
        parent = manager.tree.parent_of(leaf)
        reattached = manager.remove_member(leaf)
        assert reattached == []
        assert leaf not in manager.tree.nodes
        assert (0, parent, leaf) not in manager.plans
        manager.tree.validate()

    def test_remove_interior_reattaches_orphans(self):
        manager = make_manager()
        interior = next(n for n in manager.tree.members if manager.tree.children_of(n))
        orphans_before = set()
        stack = list(manager.tree.children_of(interior))
        while stack:
            node = stack.pop()
            orphans_before.add(node)
            stack.extend(manager.tree.children_of(node))
        reattached = manager.remove_member(interior)
        assert set(reattached) == orphans_before
        assert interior not in manager.tree.nodes
        for orphan in orphans_before:
            assert orphan in manager.tree.nodes
            assert (0, manager.tree.parent_of(orphan), orphan) in manager.plans
        manager.tree.validate(max_depth=manager.max_depth)
        assert manager.stats.reattachments == len(orphans_before)

    def test_remove_root_rejected(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            manager.remove_member(0)

    def test_remove_unknown_rejected(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            manager.remove_member(42)

    def test_plans_of_departed_node_dropped(self):
        manager = make_manager()
        interior = next(n for n in manager.tree.members if manager.tree.children_of(n))
        manager.remove_member(interior)
        assert not any(
            interior in (key[1], key[2]) for key in manager.plans
        )

    def test_repeated_churn_preserves_invariants(self):
        rng = np.random.default_rng(2)
        manager = make_manager(members=range(1, 8))
        present = set(manager.tree.members)
        absent = set()
        for _ in range(60):
            if present and (not absent or rng.random() < 0.5):
                node = int(rng.choice(sorted(present)))
                manager.remove_member(node)
                present.discard(node)
                absent.add(node)
            else:
                node = int(rng.choice(sorted(absent)))
                manager.add_member(node)
                absent.discard(node)
                present.add(node)
            manager.tree.validate(max_depth=manager.max_depth)
            assert manager.tree.members == present
            # every edge of the tree has a live plan, and no plan is stale
            edges = {(0, p, c) for p, c in manager.tree.edges()}
            assert edges == set(manager.plans)

    def test_random_churn_sequences_preserve_invariants_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            st.lists(
                st.tuples(st.booleans(), st.integers(min_value=1, max_value=7)),
                max_size=40,
            ),
            st.integers(min_value=0, max_value=1000),
        )
        @settings(max_examples=30, deadline=None)
        def run_sequence(ops, seed):
            rng = np.random.default_rng(seed)
            rates = full_mesh_rates(10)
            # jitter rates so different seeds build different trees
            jittered = RateTable()
            for (a, b), rate in rates.pairs():
                jittered.set(a, b, rate * (1 + rng.random()))
            manager = make_manager(members=range(1, 8), rates=jittered)
            present = set(manager.tree.members)
            for leave, node in ops:
                if leave and node in present:
                    manager.remove_member(node)
                    present.discard(node)
                elif not leave and node not in present:
                    manager.add_member(node)
                    present.add(node)
            manager.tree.validate(max_depth=manager.max_depth)
            assert manager.tree.members == present
            edges = {(0, p, c) for p, c in manager.tree.edges()}
            assert edges == set(manager.plans)

        run_sequence()

    def test_rate_aware_reattachment(self):
        # node 5's best surviving contact is node 2 by a wide margin
        rates = RateTable({(0, 1): 1.0, (1, 5): 1.0, (0, 2): 1.0, (2, 5): 50.0,
                           (0, 3): 1.0})
        tree = RefreshTree(root=0)
        tree.attach(1, 0)
        tree.attach(2, 0)
        tree.attach(3, 0)
        tree.attach(5, 1)
        manager = HierarchyManager(
            item_id=0, tree=tree, rates=rates, plans={}, window=10.0,
            p_req=0.9, fanout=3, max_depth=3, all_nodes=(0, 1, 2, 3, 5),
        )
        manager.remove_member(1)
        assert tree.parent_of(5) == 2


class TestManagersForRuntime:
    @pytest.fixture(scope="class")
    def runtime(self):
        trace = get_profile("small").generate(np.random.default_rng(4), duration=DAY)
        catalog = DataCatalog.uniform(
            2, sources=[trace.node_ids[0]], refresh_interval=4 * 3600.0
        )
        return build_simulation(trace, catalog, scheme="hdr",
                                num_caching_nodes=5, seed=1)

    def test_one_manager_per_item(self, runtime):
        managers = managers_for_runtime(runtime)
        assert set(managers) == {0, 1}
        assert managers[0].tree is runtime.trees[0]

    def test_flooding_runtime_rejected(self):
        trace = get_profile("small").generate(np.random.default_rng(4), duration=DAY)
        catalog = DataCatalog.uniform(
            1, sources=[trace.node_ids[0]], refresh_interval=4 * 3600.0
        )
        runtime = build_simulation(trace, catalog, scheme="flooding",
                                   num_caching_nodes=5, seed=1)
        with pytest.raises(ValueError, match="no hierarchy"):
            managers_for_runtime(runtime)

    def test_star_runtime_keeps_depth_one(self):
        trace = get_profile("small").generate(np.random.default_rng(4), duration=DAY)
        catalog = DataCatalog.uniform(
            1, sources=[trace.node_ids[0]], refresh_interval=4 * 3600.0
        )
        runtime = build_simulation(trace, catalog, scheme="source",
                                   num_caching_nodes=5, seed=1)
        managers = managers_for_runtime(runtime)
        manager = managers[0]
        node = runtime.caching_nodes[0]
        manager.remove_member(node)
        manager.add_member(node)
        assert manager.tree.max_depth == 1


class TestChurnProcess:
    def make_runtime(self, seed=1):
        trace = get_profile("small").generate(
            np.random.default_rng(seed), duration=2 * DAY
        )
        catalog = DataCatalog.uniform(
            2, sources=[trace.node_ids[0]], refresh_interval=4 * 3600.0
        )
        return build_simulation(trace, catalog, scheme="hdr",
                                num_caching_nodes=5, seed=seed)

    def test_validation(self):
        runtime = self.make_runtime()
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            ChurnProcess(runtime, leave_rate=-1.0, mean_downtime=10.0, rng=rng,
                         until=DAY)
        with pytest.raises(ValueError):
            ChurnProcess(runtime, leave_rate=1.0, mean_downtime=0.0, rng=rng,
                         until=DAY)

    def test_zero_rate_is_noop(self):
        runtime = self.make_runtime()
        churn = ChurnProcess(runtime, leave_rate=0.0, mean_downtime=3600.0,
                             rng=np.random.default_rng(1), until=2 * DAY)
        churn.install()
        runtime.run(until=2 * DAY)
        assert churn.num_departures == 0

    def test_departures_and_returns_happen(self):
        runtime = self.make_runtime()
        churn = ChurnProcess(
            runtime, leave_rate=1 / (6 * 3600.0), mean_downtime=3600.0,
            rng=np.random.default_rng(1), until=2 * DAY,
        )
        churn.install()
        runtime.run(until=2 * DAY)
        assert churn.num_departures > 3
        returns = sum(1 for e in churn.events if e.online)
        assert returns > 0
        # trees stayed consistent throughout
        for item_id, tree in runtime.trees.items():
            tree.validate()
            online_members = {
                n for n in runtime.caching_nodes if n not in churn.offline
            }
            assert tree.members == online_members

    def test_offline_nodes_excluded_from_snapshot(self):
        runtime = self.make_runtime()
        node = runtime.caching_nodes[0]
        __, __, total_before = runtime.freshness_snapshot()
        runtime.network.set_online(node, False)
        __, __, total_after = runtime.freshness_snapshot()
        assert total_after == total_before - len(runtime.catalog)

    def test_simulation_still_makes_progress_under_churn(self):
        runtime = self.make_runtime()
        runtime.install_freshness_probe(interval=1800.0, until=2 * DAY)
        churn = ChurnProcess(
            runtime, leave_rate=1 / (8 * 3600.0), mean_downtime=2 * 3600.0,
            rng=np.random.default_rng(5), until=2 * DAY,
        )
        churn.install()
        runtime.run(until=2 * DAY)
        freshness = runtime.stats.series("probe.freshness").mean()
        assert freshness > 0.1  # refreshing keeps working through repairs


class TestOfflineNetwork:
    def test_offline_node_has_no_contacts(self, line_trace, network_factory):
        net = network_factory(line_trace)
        net.nodes[1].online = False
        net.run(until=1000.0)
        assert net.stats.counter_value("net.contacts_skipped_offline") > 0

    def test_set_online_closes_open_contacts(self, line_trace, network_factory):
        net = network_factory(line_trace)
        net.start()
        net.sim.run(until=15.0)  # 0-1 contact open
        assert net.nodes[0].in_contact_with(1)
        net.set_online(1, False)
        assert not net.nodes[0].in_contact_with(1)
        assert not net.nodes[1].in_contact_with(0)
        # the later contact_end event must not fire handlers twice
        net.sim.run(until=25.0)

    def test_set_online_idempotent(self, line_trace, network_factory):
        net = network_factory(line_trace)
        net.set_online(1, True)  # already online: no-op
        assert net.stats.counter_value("net.nodes_came_online") == 0
