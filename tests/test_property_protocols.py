"""Protocol-level property tests on randomly generated small worlds.

Hypothesis generates small rate matrices and scheme parameters; each
example wires a full HDR simulation and checks invariants that must hold
for *any* input:

- cached versions never decrease at any node;
- every recorded update has a non-negative delay and refers to a version
  the ground truth actually published;
- the freshness snapshot is always within [0, total];
- refresh overhead is zero iff no version ever left a source.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.caching.items import DataCatalog
from repro.core.scheme import build_simulation
from repro.mobility.synthetic import PoissonContactModel
from repro.sim.node import ProtocolHandler


class VersionMonotonicityWatcher(ProtocolHandler):
    """Asserts a node's cached versions never decrease."""

    def __init__(self, store):
        super().__init__()
        self.store = store
        self.highest: dict[int, int] = {}
        self.violations: list[str] = []

    def on_contact_end(self, peer):
        self._check()

    def on_contact_start(self, peer):
        self._check()

    def _check(self):
        for entry in self.store.entries():
            previous = self.highest.get(entry.item_id, 0)
            if entry.version < previous:
                self.violations.append(
                    f"item {entry.item_id} went {previous} -> {entry.version}"
                )
            self.highest[entry.item_id] = max(previous, entry.version)


@st.composite
def simulation_params(draw):
    n = draw(st.integers(min_value=4, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    mean_rate = draw(st.floats(min_value=1e-5, max_value=5e-4))
    num_items = draw(st.integers(min_value=1, max_value=3))
    num_caching = draw(st.integers(min_value=1, max_value=max(1, n - 2)))
    scheme = draw(st.sampled_from(["hdr", "flat", "source", "flooding"]))
    return n, seed, mean_rate, num_items, num_caching, scheme


class TestProtocolInvariants:
    @given(simulation_params())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_full_simulation_invariants(self, params):
        n, seed, mean_rate, num_items, num_caching, scheme = params
        rng = np.random.default_rng(seed)
        rates = np.full((n, n), mean_rate)
        np.fill_diagonal(rates, 0.0)
        trace = PoissonContactModel(rates, mean_duration=60.0).generate(
            4 * 86400.0, rng
        )
        if trace.num_nodes < 2:
            return
        source = trace.node_ids[0]
        catalog = DataCatalog.uniform(
            num_items, sources=[source], refresh_interval=6 * 3600.0
        )
        caching = [nid for nid in trace.node_ids if nid != source][:num_caching]
        if not caching:
            return
        runtime = build_simulation(
            trace, catalog, scheme=scheme, caching_nodes=caching, seed=seed
        )
        watchers = [
            runtime.nodes[nid].add_handler(
                VersionMonotonicityWatcher(runtime.stores[nid])
            )
            for nid in caching
        ]
        runtime.run(until=4 * 86400.0)

        for watcher in watchers:
            assert watcher.violations == []
        for update in runtime.update_log:
            assert update.delay >= 0.0
            assert 1 <= update.version <= runtime.history.num_versions(
                update.item_id
            )
        fresh, valid, total = runtime.freshness_snapshot()
        assert 0 <= fresh <= valid <= total or (fresh <= total and valid <= total)
        if scheme != "none":
            published = sum(
                runtime.history.num_versions(i.item_id) for i in catalog
            )
            assert published >= num_items
