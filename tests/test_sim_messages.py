"""Tests for the message data model."""

from repro.sim.messages import Message, reset_message_ids


class TestMessage:
    def test_unique_ids(self):
        a = Message(kind="x", src=1, dst=2, created_at=0.0)
        b = Message(kind="x", src=1, dst=2, created_at=0.0)
        assert a.msg_id != b.msg_id

    def test_copy_shares_msg_id_new_copy_id(self):
        original = Message(kind="x", src=1, dst=2, created_at=0.0, payload={"k": 1})
        duplicate = original.copy()
        assert duplicate.msg_id == original.msg_id
        assert duplicate.copy_id != original.copy_id

    def test_copy_payload_is_independent(self):
        original = Message(kind="x", src=1, dst=2, created_at=0.0, payload={"k": 1})
        duplicate = original.copy()
        duplicate.payload["k"] = 2
        assert original.payload["k"] == 1

    def test_copy_preserves_fields(self):
        original = Message(
            kind="refresh", src=3, dst=9, created_at=5.0, size=512,
            ttl=100.0, hops_left=4,
        )
        original.hop_count = 2
        duplicate = original.copy()
        assert duplicate.kind == "refresh"
        assert duplicate.src == 3
        assert duplicate.dst == 9
        assert duplicate.size == 512
        assert duplicate.ttl == 100.0
        assert duplicate.hops_left == 4
        assert duplicate.hop_count == 2

    def test_expiry(self):
        message = Message(kind="x", src=1, dst=2, created_at=10.0, ttl=5.0)
        assert not message.expired(14.9)
        assert message.expired(15.1)

    def test_no_ttl_never_expires(self):
        message = Message(kind="x", src=1, dst=2, created_at=0.0)
        assert not message.expired(1e12)

    def test_reset_ids(self):
        reset_message_ids()
        message = Message(kind="x", src=1, dst=2, created_at=0.0)
        assert message.msg_id == 1
