"""Smoke-run every script in examples/ with tiny parameters.

Each example honours the ``REPRO_EXAMPLE_FAST`` environment variable by
shrinking its trace and horizon to something that finishes in seconds.
These tests run the scripts exactly as a user would -- as subprocesses
with ``PYTHONPATH=src`` -- so import errors, API drift, and crashed
``main()`` bodies all surface in CI.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def _run_example(path: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_EXAMPLE_FAST"] = "1"
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return subprocess.run(
        [sys.executable, str(path)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_directory_is_nonempty():
    assert EXAMPLE_SCRIPTS, f"no example scripts found in {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[p.stem for p in EXAMPLE_SCRIPTS]
)
def test_example_runs(script: Path):
    result = _run_example(script)
    assert result.returncode == 0, (
        f"{script.name} exited with {result.returncode}\n"
        f"--- stdout ---\n{result.stdout}\n--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
