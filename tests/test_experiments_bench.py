"""Tests for the benchmark helpers: the engine-regression gate, the
reference scenario, and the single-CPU sweep skip."""

import json

from repro.experiments import bench
from repro.experiments.bench import (
    SWEEP_SEEDS,
    check_engine_regression,
    check_scale_regression,
    reference_settings,
    sweep_benchmark,
)
from repro.experiments.config import DAY


def report(events_per_sec: float) -> dict:
    return {"engine": {"events_per_sec": events_per_sec}}


class TestCheckEngineRegression:
    def baseline(self, tmp_path, payload) -> str:
        path = tmp_path / "baseline.json"
        path.write_text(payload if isinstance(payload, str) else json.dumps(payload))
        return str(path)

    def test_passes_within_threshold(self, tmp_path):
        path = self.baseline(tmp_path, report(100_000.0))
        ok, message = check_engine_regression(report(80_000.0), path)
        assert ok
        assert "0.80x" in message

    def test_fails_beyond_threshold(self, tmp_path):
        path = self.baseline(tmp_path, report(100_000.0))
        ok, message = check_engine_regression(report(60_000.0), path)
        assert not ok
        assert "floor 0.70x" in message

    def test_custom_threshold(self, tmp_path):
        path = self.baseline(tmp_path, report(100_000.0))
        ok, _ = check_engine_regression(report(60_000.0), path, threshold=0.5)
        assert ok

    def test_missing_baseline_skips(self, tmp_path):
        ok, message = check_engine_regression(
            report(1.0), str(tmp_path / "absent.json")
        )
        assert ok
        assert "skipping" in message

    def test_malformed_baseline_skips(self, tmp_path):
        path = self.baseline(tmp_path, "{not json")
        ok, message = check_engine_regression(report(1.0), path)
        assert ok
        assert "skipping" in message

    def test_baseline_without_engine_section_skips(self, tmp_path):
        path = self.baseline(tmp_path, {"sweep": {}})
        ok, message = check_engine_regression(report(1.0), path)
        assert ok
        assert "skipping" in message


class TestReferenceSettings:
    def test_full_scenario(self):
        settings = reference_settings()
        assert settings.seeds == SWEEP_SEEDS
        assert settings.duration == 6 * DAY
        assert settings.num_caching_nodes == 12
        assert settings.num_items == 6
        assert settings.num_sources == 2
        assert settings.probe_interval == 60.0

    def test_quick_scenario_shrinks_only_seeds_and_duration(self):
        settings = reference_settings(quick=True)
        assert settings.seeds == (1, 2)
        assert settings.duration == 3 * DAY
        assert settings.num_caching_nodes == 12
        assert settings.probe_interval == 60.0


class TestSweepSkip:
    def test_single_cpu_skips_comparison(self, monkeypatch):
        monkeypatch.setattr(bench, "available_cpus", lambda: 1)
        result = sweep_benchmark()
        assert result["skipped"] == "1 cpu"
        assert result["cpus"] == 1
        assert ">= 2 usable CPUs" in result["note"]


def scale_report(points, speedup_ok=True, rss_ok=True) -> dict:
    return {
        "scale": {
            "points": points,
            "speedup_ok": speedup_ok,
            "rss_ok": rss_ok,
            "soa_speedup_1k": 10.0,
            "speedup_floor": bench.SCALE_MIN_SOA_SPEEDUP,
            "rss_ceiling_mb": bench.SCALE_RSS_CEILING_MB,
        }
    }


def scale_point(backend, nodes, events_per_sec) -> dict:
    return {"backend": backend, "nodes": nodes,
            "events_per_sec": events_per_sec}


class TestCheckScaleRegression:
    def baseline(self, tmp_path, payload) -> str:
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_passes_within_threshold(self, tmp_path):
        path = self.baseline(
            tmp_path, scale_report([scale_point("soa", 1000, 100_000.0)])
        )
        ok, message = check_scale_regression(
            scale_report([scale_point("soa", 1000, 80_000.0)]), path
        )
        assert ok
        assert "1 point(s)" in message

    def test_fails_beyond_threshold(self, tmp_path):
        path = self.baseline(
            tmp_path, scale_report([scale_point("soa", 1000, 100_000.0)])
        )
        ok, message = check_scale_regression(
            scale_report([scale_point("soa", 1000, 50_000.0)]), path
        )
        assert not ok
        assert "soa@1000" in message

    def test_fails_when_speedup_floor_missed(self, tmp_path):
        path = self.baseline(tmp_path, scale_report([]))
        ok, message = check_scale_regression(
            scale_report([], speedup_ok=False), path
        )
        assert not ok
        assert "under floor" in message

    def test_fails_when_rss_ceiling_exceeded(self, tmp_path):
        path = self.baseline(tmp_path, scale_report([]))
        ok, message = check_scale_regression(
            scale_report([], rss_ok=False), path
        )
        assert not ok
        assert "peak-RSS ceiling" in message

    def test_new_points_pass_against_missing_baseline(self, tmp_path):
        ok, _ = check_scale_regression(
            scale_report([scale_point("soa", 100_000, 1.0)]),
            str(tmp_path / "absent.json"),
        )
        assert ok

    def test_points_absent_from_baseline_pass(self, tmp_path):
        path = self.baseline(
            tmp_path, scale_report([scale_point("soa", 1000, 100_000.0)])
        )
        ok, _ = check_scale_regression(
            scale_report([scale_point("soa", 30_000, 1.0)]), path
        )
        assert ok
