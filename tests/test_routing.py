"""Tests for the DTN routing policies.

The line trace (0-1, 1-2, 2-3 repeating every 100 s) lets multi-hop
policies carry a message from node 0 to node 3 within one sweep, while
direct delivery must wait for a 0-3 contact that never comes.
"""

import pytest

from repro.mobility.trace import Contact, ContactTrace
from repro.routing.base import RoutingAgent
from repro.routing.direct import DirectDelivery
from repro.routing.epidemic import EpidemicRouting
from repro.routing.prophet import ProphetRouting
from repro.routing.spraywait import SprayAndWait
from repro.sim.messages import Message
from tests.conftest import build_network


def install(net, agent_class, **kwargs):
    agents = {}
    for nid, node in net.nodes.items():
        agents[nid] = node.add_handler(agent_class(**kwargs))
    net.start()
    return agents


def originate(net, agents, src, dst, at, kind="data"):
    message = Message(kind=kind, src=src, dst=dst, created_at=at)
    net.sim.run(until=at)
    agents[src].originate(message)
    return message


class TestDirectDelivery:
    def test_delivers_on_direct_contact(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, DirectDelivery)
        originate(net, agents, 0, 1, at=5.0)
        net.sim.run(until=100.0)
        assert len(agents[1].deliveries) == 1

    def test_never_relays(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, DirectDelivery)
        originate(net, agents, 0, 3, at=5.0)
        net.sim.run(until=1000.0)
        assert len(agents[3].deliveries) == 0
        # message still sits in 0's buffer
        assert len(agents[0].buffer) == 1

    def test_local_copy_dropped_after_delivery(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, DirectDelivery)
        originate(net, agents, 0, 1, at=5.0)
        net.sim.run(until=100.0)
        assert len(agents[0].buffer) == 0


class TestEpidemicRouting:
    def test_multi_hop_delivery(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, EpidemicRouting)
        originate(net, agents, 0, 3, at=5.0)
        net.sim.run(until=100.0)
        assert len(agents[3].deliveries) == 1
        # delivered within the first sweep: 0->1 at 10, 1->2 at 30, 2->3 at 50
        assert agents[3].deliveries[0].delivered_at == pytest.approx(50.0)

    def test_no_reinfection(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, EpidemicRouting)
        originate(net, agents, 0, 3, at=5.0)
        net.sim.run(until=1000.0)
        # exactly one delivery despite repeated contacts
        assert len(agents[3].deliveries) == 1

    def test_hop_limit_respected(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, EpidemicRouting)
        message = Message(kind="data", src=0, dst=3, created_at=5.0, hops_left=1)
        net.sim.run(until=5.0)
        agents[0].originate(message)
        net.sim.run(until=1000.0)
        # one hop reaches node 1 only; node 3 needs three hops
        assert len(agents[3].deliveries) == 0

    def test_ttl_expiry_stops_spread(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, EpidemicRouting)
        message = Message(kind="data", src=0, dst=3, created_at=5.0, ttl=30.0)
        net.sim.run(until=5.0)
        agents[0].originate(message)
        net.sim.run(until=1000.0)
        # reaches node 1 (t=10) and node 2 (t=30) but expires before 2->3 at t=50
        assert len(agents[3].deliveries) == 0


class TestSprayAndWait:
    def test_copy_budget_limits_spread(self):
        # star: node 0 meets 1..4 in sequence, then 5 (the destination) never
        contacts = [Contact.make(0, peer, 10.0 * peer, 10.0 * peer + 5) for peer in (1, 2, 3, 4)]
        trace = ContactTrace(contacts, node_ids=[0, 1, 2, 3, 4, 5])
        net = build_network(trace)
        agents = install(net, SprayAndWait, initial_copies=4)
        originate(net, agents, 0, 5, at=5.0)
        net.sim.run(until=100.0)
        carriers = [nid for nid, agent in agents.items() if agent.buffer]
        # binary spray with 4 tokens: 0 gives 2 to node 1, 1 to node 2, done
        assert 1 in carriers and 2 in carriers
        assert 3 not in carriers and 4 not in carriers

    def test_wait_phase_direct_delivery(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, SprayAndWait, initial_copies=2)
        originate(net, agents, 0, 2, at=5.0)
        net.sim.run(until=1000.0)
        # node 1 gets the single sprayed copy and later meets node 2
        assert len(agents[2].deliveries) == 1

    def test_token_conservation(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, SprayAndWait, initial_copies=8)
        message = originate(net, agents, 0, 3, at=5.0)
        net.sim.run(until=45.0)
        total = 0
        for agent in agents.values():
            held = agent.buffer.get(message.msg_id)
            if held is not None:
                total += held.payload["sw_tokens"]
        assert total == 8

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            SprayAndWait(initial_copies=0)


class TestProphet:
    def test_direct_encounter_raises_predictability(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, ProphetRouting)
        net.sim.run(until=25.0)
        assert agents[0].predictability_to(1) >= 0.75
        assert agents[1].predictability_to(0) >= 0.75

    def test_transitivity(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, ProphetRouting)
        net.sim.run(until=45.0)
        # 1 met 0, then 2 met 1 -> 2 learns about 0 transitively
        assert agents[2].predictability_to(0) > 0.0

    def test_aging_decays(self, line_trace, network_factory):
        net = network_factory(line_trace, )
        agents = install(net, ProphetRouting, aging_unit=10.0, gamma=0.5)
        net.sim.run(until=25.0)
        after_contact = agents[0].predictability_to(1)
        net.sim.run(until=85.0)
        agents[0]._age()
        assert agents[0].predictability_to(1) < after_contact

    def test_routes_along_gradient(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, ProphetRouting)
        # warm up predictabilities over one sweep, then send in the second
        net.sim.run(until=100.0)
        originate(net, agents, 0, 3, at=105.0)
        net.sim.run(until=1000.0)
        assert len(agents[3].deliveries) == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ProphetRouting(p_init=0.0)
        with pytest.raises(ValueError):
            ProphetRouting(gamma=1.5)
        with pytest.raises(ValueError):
            ProphetRouting(beta=-0.1)


class TestRoutingAgentBase:
    def test_originate_to_self_delivers_immediately(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, EpidemicRouting)
        message = Message(kind="data", src=0, dst=0, created_at=0.0)
        agents[0].originate(message)
        assert len(agents[0].deliveries) == 1

    def test_delivery_callback(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, EpidemicRouting)
        received = []
        agents[1].on_delivery("data", received.append)
        originate(net, agents, 0, 1, at=5.0)
        net.sim.run(until=100.0)
        assert len(received) == 1

    def test_buffer_capacity_evicts_oldest(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, EpidemicRouting, buffer_capacity=2)
        agent = agents[0]
        for k in range(3):
            agent.originate(Message(kind="data", src=0, dst=3, created_at=float(k)))
        assert len(agent.buffer) == 2
        oldest_left = min(m.created_at for m in agent.buffer.values())
        assert oldest_left == 1.0

    def test_delay_statistics_recorded(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agents = install(net, EpidemicRouting)
        originate(net, agents, 0, 1, at=5.0)
        net.sim.run(until=100.0)
        assert agents[1].stats.tally("routing.delay.data").count == 1
        assert agents[1].stats.tally("routing.delay.data").mean == pytest.approx(5.0)

    def test_kinds_filter(self, line_trace, network_factory):
        net = network_factory(line_trace)
        agent = RoutingAgentStub(kinds=frozenset({"only"}))
        assert agent.handled_kinds == frozenset({"only"})


class RoutingAgentStub(RoutingAgent):
    def should_forward(self, message, peer):
        return False
