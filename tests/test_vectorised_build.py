"""Equivalence tests for the vectorised build pipeline.

The array-native build path (chunked trace synthesis, array-backed rate
estimation, array-driven NCL/tree/plan construction, and the
``ContactEventStream.from_arrays`` stream) is only allowed to be *fast*
-- every result must be bit-identical to the scalar/object path it
replaces.  These tests pin that contract:

- chunked generation equals monolithic generation for every mobility
  model, including pathological chunk sizes;
- ``mle_rates``/``ewma_rates``/``RateTable.matrix`` agree exactly across
  the ``VECTORISED_RATES`` flag (Hypothesis-driven);
- the half-open estimation window counts boundary contacts once;
- NCL selection and refresh trees are identical across the flag;
- the SoA event stream built from :class:`ContactArrays` matches the one
  built from ``Contact`` objects, and the object backend refuses arrays;
- one small scale point produces the same simulation from either trace
  representation.
"""

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.caching.items import DataCatalog
from repro.caching.ncl import select_caching_nodes
from repro.contacts import rates as rates_module
from repro.contacts.rates import RateTable, ewma_rates, mle_rates
from repro.core.hierarchy import build_tree
from repro.core.scheme import build_simulation
from repro.mobility.arrays import ContactArrays
from repro.mobility.community import CommunityModel, DiurnalModel
from repro.mobility.rwp import RandomWaypointModel
from repro.mobility.synthetic import PoissonContactModel
from repro.mobility.trace import Contact, ContactTrace
from repro.mobility.workingday import WorkingDayModel

HOUR = 3600.0


@contextmanager
def vectorised(enabled):
    saved = rates_module.VECTORISED_RATES
    rates_module.VECTORISED_RATES = enabled
    try:
        yield
    finally:
        rates_module.VECTORISED_RATES = saved


def _rate_matrix(n, seed=0, scale=2e-4):
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.uniform(0.2, 1.0, (n, n)) * scale, k=1)
    # sprinkle zero-rate pairs so the sparse structure is exercised
    upper[upper < 0.3 * scale] = 0.0
    return upper + upper.T


def _contact_tuples(trace):
    return [(c.a, c.b, c.start, c.end) for c in trace]


MODEL_FACTORIES = {
    "poisson": lambda: PoissonContactModel(_rate_matrix(10), mean_duration=200.0),
    "community": lambda: CommunityModel(
        12, num_communities=3, intra_rate=3e-4, inter_rate=2e-5,
        rng=np.random.default_rng(5),
    ),
    "diurnal": lambda: DiurnalModel(_rate_matrix(10, seed=2, scale=4e-4)),
    "workingday": lambda: WorkingDayModel(10, rng=np.random.default_rng(9)),
    "rwp": lambda: RandomWaypointModel(8, area=200.0, radio_range=40.0),
}


class TestChunkedGeneration:
    """Chunked synthesis must be bit-identical to the monolithic path."""

    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_arrays_match_object_path(self, name):
        model = MODEL_FACTORIES[name]()
        trace = model.generate(12 * HOUR, np.random.default_rng(42))
        arrays = model.generate_arrays(12 * HOUR, np.random.default_rng(42))
        assert _contact_tuples(arrays.to_trace()) == _contact_tuples(trace)

    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_chunk_size_is_irrelevant(self, name):
        # 7 never divides the generators' natural batch sizes, so every
        # block boundary falls mid-pair
        model = MODEL_FACTORIES[name]()
        whole = model.generate_arrays(12 * HOUR, np.random.default_rng(3))
        tiny = model.generate_arrays(12 * HOUR, np.random.default_rng(3),
                                     chunk_contacts=7)
        for field in ("start", "end", "a", "b"):
            np.testing.assert_array_equal(getattr(whole, field),
                                          getattr(tiny, field))

    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_chunks_are_bounded_and_sorted(self, name):
        model = MODEL_FACTORIES[name]()
        blocks = list(model.generate_chunks(12 * HOUR,
                                            np.random.default_rng(1),
                                            chunk_contacts=16))
        assert blocks, "generator produced no contacts"
        for s, e, a, b in blocks:
            assert len(s) <= 16 + 64  # a block may round up to a pair group
            assert np.all(np.diff(s) >= 0)  # time-sorted within the block
            assert np.all(e > s)
            assert np.all(a != b)

    def test_chunk_size_must_be_positive(self):
        model = MODEL_FACTORIES["poisson"]()
        with pytest.raises(ValueError):
            list(model.generate_chunks(HOUR, np.random.default_rng(0),
                                       chunk_contacts=0))

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(chunk=st.integers(min_value=1, max_value=64),
           seed=st.integers(min_value=0, max_value=1000))
    def test_poisson_chunking_property(self, chunk, seed):
        model = PoissonContactModel(_rate_matrix(6, seed=1, scale=6e-4),
                                    mean_duration=150.0)
        trace = model.generate(6 * HOUR, np.random.default_rng(seed))
        arrays = model.generate_arrays(6 * HOUR, np.random.default_rng(seed),
                                       chunk_contacts=chunk)
        assert _contact_tuples(arrays.to_trace()) == _contact_tuples(trace)


@st.composite
def contact_lists(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=8))
    n_contacts = draw(st.integers(min_value=1, max_value=40))
    contacts = []
    for _ in range(n_contacts):
        a = draw(st.integers(min_value=0, max_value=n_nodes - 2))
        b = draw(st.integers(min_value=a + 1, max_value=n_nodes - 1))
        start = draw(st.floats(min_value=0.0, max_value=10_000.0,
                               allow_nan=False, width=32))
        length = draw(st.floats(min_value=1.0, max_value=5_000.0,
                                allow_nan=False, width=32))
        contacts.append(Contact.make(a, b, start, start + length))
    return ContactTrace(contacts, node_ids=range(n_nodes))


class TestRateEstimationIdentity:
    """The array estimators must match the scalar loops bit for bit."""

    @settings(max_examples=60, deadline=None)
    @given(trace=contact_lists())
    def test_mle_rates_identity(self, trace):
        arrays = ContactArrays.from_trace(trace)
        with vectorised(False):
            scalar = dict(mle_rates(trace).pairs())
        with vectorised(True):
            vec = dict(mle_rates(arrays).pairs())
        assert vec == scalar  # exact float equality, not approx

    @settings(max_examples=60, deadline=None)
    @given(trace=contact_lists(),
           alpha=st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
    def test_ewma_rates_identity(self, trace, alpha):
        arrays = ContactArrays.from_trace(trace)
        with vectorised(False):
            scalar = dict(ewma_rates(trace, alpha=alpha).pairs())
        with vectorised(True):
            vec = dict(ewma_rates(arrays, alpha=alpha).pairs())
        assert vec == scalar

    @settings(max_examples=40, deadline=None)
    @given(trace=contact_lists())
    def test_matrix_identity(self, trace):
        table = mle_rates(ContactArrays.from_trace(trace))
        ids = sorted(table.nodes())
        vec = table.matrix(ids)
        scalar = table._matrix_scalar(ids)
        np.testing.assert_array_equal(vec, scalar)

    def test_half_open_window(self):
        # contact starting exactly at t1 is outside [t0, t1); exactly at
        # t0 is inside -- so tiled windows count each contact once
        trace = ContactTrace([
            Contact.make(0, 1, 0.0, 10.0),
            Contact.make(0, 1, 50.0, 60.0),
            Contact.make(0, 1, 100.0, 110.0),
        ])
        for flag, make in ((False, lambda: trace),
                           (True, lambda: ContactArrays.from_trace(trace))):
            with vectorised(flag):
                assert mle_rates(make(), t0=0.0, t1=100.0).rate(0, 1) == 0.02
                assert mle_rates(make(), t0=50.0, t1=150.0).rate(0, 1) == 0.02


class TestPlanningIdentity:
    """NCL selection and trees must not depend on the flag."""

    def _table(self):
        model = PoissonContactModel(_rate_matrix(20, seed=4, scale=5e-4))
        arrays = model.generate_arrays(2 * 24 * HOUR, np.random.default_rng(8))
        return mle_rates(arrays)

    @pytest.mark.parametrize("metric", ["contact", "degree"])
    def test_selection_identity(self, metric):
        table = self._table()
        assert table.is_array_backed
        with vectorised(True):
            fast = select_caching_nodes(table, 6, metric=metric)
        with vectorised(False):
            slow = select_caching_nodes(table, 6, metric=metric)
        assert fast == slow

    def test_tree_identity(self):
        table = self._table()
        caching = select_caching_nodes(table, 8)
        root = next(n for n in sorted(table.nodes()) if n not in caching)
        with vectorised(True):
            fast = build_tree(root, caching, table, fanout=3, max_depth=3)
        with vectorised(False):
            slow = build_tree(root, caching, table, fanout=3, max_depth=3)
        assert fast.edges() == slow.edges()


class TestEventStreamFromArrays:
    """The SoA stream must be representation-agnostic."""

    def _trace(self, seed=0):
        model = PoissonContactModel(_rate_matrix(12, seed=3, scale=5e-4))
        return model.generate(24 * HOUR, np.random.default_rng(seed))

    def test_from_arrays_matches_objects(self):
        from repro.sim.soa import ContactEventStream

        trace = self._trace()
        arrays = ContactArrays.from_trace(trace)
        obj = ContactEventStream(trace, trace.node_ids)
        arr = ContactEventStream.from_arrays(arrays)
        np.testing.assert_array_equal(obj.time, arr.time)
        np.testing.assert_array_equal(obj.kind, arr.kind)
        np.testing.assert_array_equal(obj.a, arr.a)
        np.testing.assert_array_equal(obj.b, arr.b)
        np.testing.assert_array_equal(obj.start_times, arr.start_times)

    def test_event_order_is_time_kind_seq(self):
        # the merge-based assembly must equal the brute-force sort of
        # (time, kind, arrival order) with starts before ends on ties
        from repro.sim.soa import ContactEventStream

        trace = self._trace(seed=5)
        stream = ContactEventStream.from_arrays(ContactArrays.from_trace(trace))
        keys = list(zip(stream.time.tolist(), stream.kind.tolist()))
        assert keys == sorted(keys)
        assert np.all(np.diff(stream.start_times) >= 0)

    def test_node_index_lookup(self):
        from repro.sim.soa import _NodeIndex

        index = _NodeIndex(np.array([3, 7, 11, 40], dtype=np.int64))
        assert len(index) == 4
        assert index[3] == 0 and index[40] == 3
        assert 11 in index and 12 not in index
        assert index.get(7) == 1
        assert index.get(8) is None
        with pytest.raises(KeyError):
            index[8]

    def test_object_backend_rejects_arrays(self):
        arrays = ContactArrays.from_trace(self._trace())
        catalog = DataCatalog.uniform(num_items=2, sources=[0],
                                      refresh_interval=4 * HOUR,
                                      lifetime=12 * HOUR)
        with pytest.raises(ValueError, match="object backend"):
            build_simulation(arrays, catalog, scheme="hdr",
                             num_caching_nodes=4, seed=1, backend="object")


class TestScalePointEquivalence:
    """One small scale point, all three build routes, same simulation."""

    def test_trace_modes_agree(self):
        from repro.experiments.scale import DAY, run_scale_point

        kwargs = dict(duration=0.25 * DAY, contacts_per_node=8.0,
                      num_caching_nodes=6, num_items=2, seed=11)
        via_arrays = run_scale_point(80, backend="soa", trace_mode="arrays",
                                     **kwargs)
        via_objects = run_scale_point(80, backend="soa", trace_mode="objects",
                                      **kwargs)
        object_backend = run_scale_point(80, backend="object",
                                         trace_mode="objects", **kwargs)
        for key in ("contacts", "events", "messages", "freshness"):
            assert via_arrays[key] == via_objects[key] == object_backend[key]
        assert via_arrays["trace_mode"] == "arrays"
        assert via_objects["trace_mode"] == "objects"

    def test_build_phase_records(self, tmp_path):
        from repro.experiments.scale import DAY, run_scale_point
        from repro.obs.export import load_trace
        from repro.obs.report import format_trace_report

        path = tmp_path / "build.jsonl"
        run_scale_point(40, backend="soa", duration=0.25 * DAY,
                        contacts_per_node=6.0, num_caching_nodes=4,
                        num_items=2, record_path=str(path))
        records = load_trace(str(path))
        phases = [r.phase for r in records if r.kind == "build.phase"]
        assert phases == ["synthesis", "estimation", "construction", "run"]
        assert all(r.seconds >= 0 for r in records)
        assert all(r.nodes == 40 for r in records)
        report = format_trace_report(records)
        assert "build phases (wall-clock)" in report
        assert "construction" in report


class TestContactArraysNormalisation:
    """:class:`ContactArrays` must normalise exactly like ``ContactTrace``."""

    @settings(max_examples=60, deadline=None)
    @given(trace=contact_lists())
    def test_matches_contact_trace(self, trace):
        # few nodes + many contacts -> heavy pair duplication, which is
        # the dense merge regime
        s = np.array([c.start for c in trace], dtype=np.float64)
        e = np.array([c.end for c in trace], dtype=np.float64)
        a = np.array([c.a for c in trace], dtype=np.int64)
        b = np.array([c.b for c in trace], dtype=np.int64)
        arrays = ContactArrays(s, e, a, b)
        assert _contact_tuples(arrays.to_trace()) == _contact_tuples(trace)

    def test_sparse_merge_regime(self):
        # hundreds of distinct pairs with a handful of duplicates keeps
        # the duplicate fraction under 1%, taking the sparse merge path
        rng = np.random.default_rng(0)
        a = np.arange(400, dtype=np.int64)
        b = a + 1000
        s = rng.uniform(0.0, 1000.0, 400)
        e = s + rng.uniform(1.0, 50.0, 400)
        # two overlapping and one disjoint extra interval for pair 0
        a = np.append(a, [0, 0, 0])
        b = np.append(b, [1000, 1000, 1000])
        s = np.append(s, [s[0] + 1.0, s[0] + 2.0, s[0] + 5000.0])
        e = np.append(e, [e[0] + 30.0, e[0] + 5.0, s[-1] + 10.0])
        contacts = [Contact.make(int(ai), int(bi), float(si), float(ei))
                    for ai, bi, si, ei in zip(a, b, s, e)]
        arrays = ContactArrays(s, e, a, b)
        assert _contact_tuples(arrays.to_trace()) == \
            _contact_tuples(ContactTrace(contacts))

    def test_all_unique_pairs_short_circuit(self):
        rng = np.random.default_rng(1)
        order = rng.permutation(100)
        a = np.arange(100, dtype=np.int64)[order]
        b = (a + 500)
        s = rng.uniform(0.0, 100.0, 100)
        e = s + 10.0
        arrays = ContactArrays(s, e, a, b)
        assert len(arrays) == 100
        assert np.all(np.diff(arrays.start) >= 0)
        contacts = [Contact.make(int(ai), int(bi), float(si), float(ei))
                    for ai, bi, si, ei in zip(a, b, s, e)]
        assert _contact_tuples(arrays.to_trace()) == \
            _contact_tuples(ContactTrace(contacts))

    def test_endpoints_are_normalised(self):
        arrays = ContactArrays([0.0], [5.0], [9], [2])
        assert arrays.a.tolist() == [2] and arrays.b.tolist() == [9]

    def test_validation(self):
        with pytest.raises(ValueError, match="self-contact"):
            ContactArrays([0.0], [1.0], [3], [3])
        with pytest.raises(ValueError, match="ends before"):
            ContactArrays([5.0], [1.0], [0], [1])
        with pytest.raises(ValueError, match="unknown nodes"):
            ContactArrays([0.0], [1.0], [0], [7], node_ids=[0, 1])
        with pytest.raises(ValueError, match="equal length"):
            ContactArrays([0.0, 1.0], [1.0], [0], [1])

    def test_from_blocks_equals_single_shot(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 20, 60)
        b = (a + 1 + rng.integers(0, 19, 60)) % 21
        keep = a != b
        a, b = a[keep], b[keep]
        s = rng.uniform(0.0, 500.0, len(a))
        e = s + rng.uniform(1.0, 40.0, len(a))
        whole = ContactArrays(s, e, a, b)
        blocks = [(s[i:i + 7], e[i:i + 7], a[i:i + 7], b[i:i + 7])
                  for i in range(0, len(a), 7)]
        blocked = ContactArrays.from_blocks(blocks)
        for field in ("start", "end", "a", "b"):
            np.testing.assert_array_equal(getattr(whole, field),
                                          getattr(blocked, field))


class TestBenchBuildFloor:
    """The bench gate must enforce the build-throughput floor."""

    def _report(self, **scale):
        base = {
            "speedup_ok": True, "rss_ok": True, "soa_speedup_1k": 10.0,
            "speedup_floor": 5.0, "rss_ceiling_mb": 2048.0, "points": [],
        }
        base.update(scale)
        return {"scale": base}

    def test_build_floor_violation_fails(self, tmp_path):
        from repro.experiments.bench import check_scale_regression

        report = self._report(
            build_ok=False, build_floor_contacts_per_sec=50_000.0,
            build_floor_min_nodes=100_000,
            points=[{"backend": "soa", "nodes": 250_000,
                     "build_contacts_per_sec": 9_000.0,
                     "events_per_sec": 1e6, "peak_rss_mb": 100.0}],
        )
        ok, message = check_scale_regression(report,
                                             str(tmp_path / "missing.json"))
        assert not ok
        assert "build throughput" in message
        assert "soa@250000" in message

    def test_old_reports_skip_build_gate(self, tmp_path):
        from repro.experiments.bench import check_scale_regression

        ok, message = check_scale_regression(self._report(),
                                             str(tmp_path / "missing.json"))
        assert ok, message

    def test_ok_message_mentions_build_floor(self, tmp_path):
        from repro.experiments.bench import check_scale_regression

        report = self._report(
            build_ok=True, build_floor_contacts_per_sec=50_000.0,
            build_floor_min_nodes=100_000, build_points_gated=2,
        )
        ok, message = check_scale_regression(report,
                                             str(tmp_path / "missing.json"))
        assert ok
        assert "contacts/s" in message

    def test_millisecond_runs_skip_throughput_compare(self, tmp_path):
        # a 5 ms run phase makes events/sec timer noise; the gate must
        # not compare it against the baseline
        import json

        from repro.experiments.bench import check_scale_regression

        point = {"backend": "soa", "nodes": 1000, "run_s": 0.005,
                 "events_per_sec": 1_000_000.0, "peak_rss_mb": 80.0}
        baseline_point = dict(point, events_per_sec=4_000_000.0)
        baseline = {"scale": {"points": [baseline_point]}}
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        ok, message = check_scale_regression(self._report(points=[point]),
                                             str(path))
        assert ok, message
        assert "0 point(s)" in message
        # the same 4x drop on a long run must still fail
        slow = dict(point, run_s=1.0)
        slow_base = {"scale": {"points": [dict(baseline_point, run_s=1.0)]}}
        path.write_text(json.dumps(slow_base))
        ok, message = check_scale_regression(self._report(points=[slow]),
                                             str(path))
        assert not ok
        assert "soa@1000" in message

    def test_quick_points_are_subset_of_full(self):
        from repro.experiments.bench import _scale_points

        assert set(_scale_points(True)) <= set(_scale_points(False))
        assert ("soa", 250_000) in _scale_points(True)
        assert ("soa", 500_000) in _scale_points(False)

    def test_legacy_mode_flips_rates_flag(self):
        from repro.experiments.bench import legacy_mode

        assert rates_module.VECTORISED_RATES
        with legacy_mode():
            assert not rates_module.VECTORISED_RATES
        assert rates_module.VECTORISED_RATES


class TestProfileCli:
    def test_profile_scale_point(self, capsys):
        from repro.cli import main

        assert main(["profile", "--backend", "soa", "--nodes", "60",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "nodes=60 backend=soa" in out
