"""Run the docstring examples of the analytical layers as tests.

CI also runs ``pytest --doctest-modules`` over these modules directly;
this wrapper keeps the examples honest under the plain tier-1 invocation
(``pytest -q``) so a drive-by docstring edit cannot silently rot.
"""

import doctest

import pytest

import repro.caching.onpath
import repro.caching.placement
import repro.contacts.rates
import repro.core.replication
import repro.mobility.levy
import repro.scenarios.grid
import repro.theory.model
import repro.theory.validate
import repro.workloads.cycles

MODULES = [
    repro.core.replication,
    repro.contacts.rates,
    repro.theory.model,
    repro.theory.validate,
    repro.mobility.levy,
    repro.workloads.cycles,
    repro.caching.onpath,
    repro.caching.placement,
    repro.scenarios.grid,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_docstring_examples(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
