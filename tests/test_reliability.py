"""Tests for the fault-tolerant runner: retries, timeouts, crashed-worker
recovery, and sweep checkpoint/resume."""

import json
import math
import os
import shutil
import time

import pytest

from repro.experiments import Settings
from repro.experiments.artifacts import cache_clear
from repro.experiments.checkpoint import (
    SweepJournal,
    decode_result,
    encode_result,
    sweep_fingerprint,
)
from repro.experiments.parallel import SweepPoint, run_sweep, run_tasks
from repro.experiments.reliability import (
    ReliabilityContext,
    RetryPolicy,
    SweepIncomplete,
    resilient_execution,
    run_tasks_resilient,
)
from repro.experiments.runner import RunMetrics

DAY = 86400.0

#: fast-converging policy for tests -- no real sleeping
QUICK = RetryPolicy(max_retries=3, backoff_base=0.01, backoff_factor=1.0)


@pytest.fixture(scope="module")
def settings():
    return Settings.fast().with_(duration=1 * DAY, seeds=(1, 2))


@pytest.fixture(autouse=True)
def fresh_cache():
    cache_clear()
    yield
    cache_clear()


# Module-level job functions: specs must reach pool workers by pickle.

def _double(x):
    return x * 2


def _flaky(spec):
    """Fails until a marker file has been written twice."""
    marker, value = spec
    count = 0
    if os.path.exists(marker):
        with open(marker) as handle:
            count = int(handle.read())
    with open(marker, "w") as handle:
        handle.write(str(count + 1))
    if count < 2:
        raise RuntimeError("transient failure")
    return value


def _perma_fail(spec):
    if spec == "bad":
        raise ValueError("permanent failure")
    return spec


def _kill_worker_once(spec):
    """os._exit the whole worker process on the first marked spec."""
    marker, value = spec
    if marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("died")
        os._exit(17)
    return value


def _hang_once(spec):
    marker, value = spec
    if marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("hung")
        time.sleep(600.0)
    return value


class TestRetryPolicy:
    @pytest.mark.parametrize("bad", [
        {"max_retries": -1},
        {"job_timeout": 0.0},
        {"backoff_factor": 0.5},
        {"backoff_jitter": 2.0},
        {"on_failure": "shrug"},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)

    def test_backoff_grows_and_is_deterministic(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_jitter=0.25)
        first = policy.backoff(0, 1)
        second = policy.backoff(0, 2)
        assert 1.0 <= first <= 1.25
        assert 2.0 <= second <= 2.5
        assert first == policy.backoff(0, 1)  # pure function
        assert policy.backoff(0, 1) != policy.backoff(1, 1)  # jitter varies


class TestRetries:
    def test_transient_failures_retry_serial(self, tmp_path):
        specs = [(str(tmp_path / "a"), 10), (str(tmp_path / "b"), 20)]
        out = run_tasks_resilient(_flaky, specs, jobs=1,
                                  context=ReliabilityContext(QUICK))
        assert out == [10, 20]

    def test_transient_failures_retry_pool(self, tmp_path):
        specs = [(str(tmp_path / "a"), 10), (str(tmp_path / "b"), 20)]
        out = run_tasks_resilient(_flaky, specs, jobs=2,
                                  context=ReliabilityContext(QUICK))
        assert out == [10, 20]

    def test_permanent_failure_raises_sweep_incomplete(self):
        context = ReliabilityContext(RetryPolicy(max_retries=1,
                                                 backoff_base=0.0))
        with pytest.raises(SweepIncomplete) as excinfo:
            run_tasks_resilient(_perma_fail, ["ok", "bad"], jobs=2,
                                context=context)
        assert list(excinfo.value.failures) == [1]
        assert "permanent failure" in excinfo.value.failures[1]

    def test_partial_mode_degrades_gracefully(self):
        policy = RetryPolicy(max_retries=0, backoff_base=0.0,
                             on_failure="partial")
        out = run_tasks_resilient(_perma_fail, ["ok", "bad", "fine"], jobs=2,
                                  context=ReliabilityContext(policy))
        assert out == ["ok", None, "fine"]


class TestWorkerCrash:
    def test_killed_worker_is_requeued_and_sweep_completes(self, tmp_path):
        marker = str(tmp_path / "killed")
        specs = [("", 1), ("", 2), (marker, 3), ("", 4)]
        out = run_tasks_resilient(_kill_worker_once, specs, jobs=2,
                                  context=ReliabilityContext(QUICK))
        assert out == [1, 2, 3, 4]
        assert os.path.exists(marker)  # the worker really died once

    def test_hung_job_times_out_and_retries(self, tmp_path):
        marker = str(tmp_path / "hung")
        policy = RetryPolicy(max_retries=2, backoff_base=0.01,
                             job_timeout=3.0)
        start = time.monotonic()
        out = run_tasks_resilient(_hang_once, [("", 1), (marker, 2)], jobs=2,
                                  context=ReliabilityContext(policy))
        elapsed = time.monotonic() - start
        assert out == [1, 2]
        assert elapsed < 60.0  # never waited out the 600 s sleep

    def test_serial_timeout_warns(self):
        policy = RetryPolicy(job_timeout=5.0)
        with pytest.warns(UserWarning, match="process pool"):
            out = run_tasks_resilient(_double, [3], jobs=1,
                                      context=ReliabilityContext(policy))
        assert out == [6]


class TestResultCodec:
    def test_run_metrics_round_trip_exact(self):
        metrics = RunMetrics(
            scheme="hdr", seed=3, freshness=1 / 3, validity=0.9999999999,
            messages=1234.0, messages_per_update=math.pi,
            on_time_ratio=0.5, refresh_delay=float("nan"),
        )
        clone = decode_result(json.loads(json.dumps(encode_result(metrics))))
        assert isinstance(clone, RunMetrics)
        assert metrics.same_as(clone)

    def test_tuples_and_nesting_round_trip(self):
        value = {"a": (1, 2.5, "x"), "b": [None, True, {"c": (0,)}]}
        clone = decode_result(json.loads(json.dumps(encode_result(value))))
        assert clone == value
        assert isinstance(clone["a"], tuple)

    def test_unjournalable_type_raises(self):
        with pytest.raises(TypeError):
            encode_result(object())


class TestJournal:
    def test_fingerprint_tracks_specs(self):
        assert sweep_fingerprint(_double, [1, 2]) == sweep_fingerprint(
            _double, [1, 2]
        )
        assert sweep_fingerprint(_double, [1, 2]) != sweep_fingerprint(
            _double, [1, 3]
        )
        assert sweep_fingerprint(_double, [1, 2]) != sweep_fingerprint(
            _perma_fail, [1, 2]
        )

    def test_journal_records_and_resumes(self, tmp_path):
        journal = SweepJournal(tmp_path / "ckpt")
        journal.open(_double, [1, 2, 3])
        journal.record(0, 2)
        journal.record(2, 6)
        journal.close()

        resumed = SweepJournal(tmp_path / "ckpt")
        resumed.open(_double, [1, 2, 3])
        assert resumed.completed() == {0: 2, 2: 6}
        resumed.close()

    def test_mismatched_fingerprint_ignored_with_warning(self, tmp_path):
        journal = SweepJournal(tmp_path / "ckpt")
        journal.open(_double, [1, 2])
        journal.record(0, 2)
        journal.close()

        other = SweepJournal(tmp_path / "ckpt")
        with pytest.warns(UserWarning, match="different"):
            other.open(_double, [1, 2, 3])
        assert other.completed() == {}
        other.close()

    def test_resume_false_discards_existing(self, tmp_path):
        journal = SweepJournal(tmp_path / "ckpt")
        journal.open(_double, [1, 2])
        journal.record(0, 2)
        journal.close()

        fresh = SweepJournal(tmp_path / "ckpt", resume=False)
        fresh.open(_double, [1, 2])
        assert fresh.completed() == {}
        fresh.close()

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = SweepJournal(tmp_path / "ckpt")
        journal.open(_double, [1, 2])
        journal.record(0, 2)
        journal.close()
        with open(journal.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"job": 1, "resu')  # crash mid-write

        resumed = SweepJournal(tmp_path / "ckpt")
        resumed.open(_double, [1, 2])
        assert resumed.completed() == {0: 2}
        resumed.close()

    def test_manifest_reports_status(self, tmp_path):
        journal = SweepJournal(tmp_path / "ckpt")
        journal.open(_double, [1, 2, 3])
        journal.record(0, 2)
        path = journal.write_manifest({1: "boom"})
        journal.close()
        manifest = json.loads(path.read_text())
        assert manifest["total"] == 3
        assert manifest["completed"] == 1
        assert manifest["failed"] == 1
        assert manifest["complete"] is False
        statuses = {entry["job"]: entry["status"] for entry in manifest["jobs"]}
        assert statuses == {0: "completed", 1: "failed", 2: "pending"}


class TestSweepResume:
    """The acceptance test: an interrupted sweep resumed from its journal
    merges byte-identically to an uninterrupted run."""

    def _sweep_point(self, settings):
        from repro.faults import FaultPlan

        plan = FaultPlan(loss_rate=0.1, crash_rate_per_day=2.0)
        return SweepPoint(settings=settings, schemes=("hdr", "flat"),
                          fault_plan=plan)

    @staticmethod
    def _assert_identical(a, b):
        assert set(a) == set(b)
        for scheme in a:
            assert len(a[scheme]) == len(b[scheme])
            for left, right in zip(a[scheme], b[scheme]):
                assert left.same_as(right)

    def test_resume_after_interruption_is_byte_identical(
        self, settings, tmp_path
    ):
        point = self._sweep_point(settings)
        baseline = run_sweep([point], jobs=1)[0]

        # A full checkpointed run gives us a complete journal to truncate.
        complete_dir = tmp_path / "complete"
        journal = SweepJournal(complete_dir)
        with resilient_execution(QUICK, journal):
            checkpointed = run_sweep([point], jobs=2)[0]
        self._assert_identical(baseline, checkpointed)

        # Simulate a run killed halfway: keep header + first two entries.
        interrupted_dir = tmp_path / "interrupted"
        interrupted_dir.mkdir()
        lines = (complete_dir / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 1 + 4  # header + 2 seeds x 2 schemes
        (interrupted_dir / "journal.jsonl").write_text(
            "\n".join(lines[:3]) + "\n"
        )

        resumed_journal = SweepJournal(interrupted_dir, resume=True)
        with resilient_execution(QUICK, resumed_journal):
            resumed = run_sweep([point], jobs=2)[0]
        self._assert_identical(baseline, resumed)
        manifest = json.loads(
            (interrupted_dir / "manifest.json").read_text()
        )
        assert manifest["complete"] is True

    def test_resume_skips_completed_jobs(self, tmp_path):
        # With every job journaled, the function never runs again --
        # resuming a finished sweep costs nothing.
        journal = SweepJournal(tmp_path / "done")
        journal.open(_perma_fail, ["bad", "also-bad"])
        journal.record(0, "cached-0")
        journal.record(1, "cached-1")
        journal.close()

        resumed = SweepJournal(tmp_path / "done", resume=True)
        with resilient_execution(RetryPolicy(max_retries=0), resumed):
            out = run_tasks(_perma_fail, ["bad", "also-bad"], jobs=1)
        assert out == ["cached-0", "cached-1"]

    def test_run_tasks_routes_through_context(self, tmp_path):
        specs = [(str(tmp_path / "m"), 7)]
        with resilient_execution(QUICK):
            assert run_tasks(_flaky, specs, jobs=1) == [7]
        # Outside the context the plain executor fails fast.
        shutil.rmtree(tmp_path)
        tmp_path.mkdir()
        with pytest.raises(RuntimeError, match="transient"):
            run_tasks(_flaky, [(str(tmp_path / "m"), 7)], jobs=1)

    def test_context_is_not_reentrant(self):
        with resilient_execution(QUICK):
            with pytest.raises(RuntimeError, match="not reentrant"):
                with resilient_execution(QUICK):
                    pass  # pragma: no cover
