"""Tests for the aggregated contact graph."""

import pytest

from repro.contacts.graph import contact_graph, largest_component
from repro.contacts.rates import RateTable
from repro.mobility.trace import Contact, ContactTrace


class TestContactGraphFromRates:
    def test_edges_with_attributes(self):
        table = RateTable({(0, 1): 0.5})
        graph = contact_graph(table)
        assert graph.has_edge(0, 1)
        assert graph[0][1]["rate"] == 0.5
        assert graph[0][1]["delay"] == 2.0

    def test_zero_rate_pairs_excluded(self):
        table = RateTable({(0, 1): 0.0, (1, 2): 0.5})
        graph = contact_graph(table)
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)


class TestContactGraphFromTrace:
    def test_counts_and_rates(self, tiny_trace):
        graph = contact_graph(tiny_trace)
        assert graph.has_edge(0, 1)
        assert graph[0][1]["count"] == 2
        assert graph[0][1]["rate"] > 0
        assert set(graph.nodes) == {0, 1, 2, 3}

    def test_isolated_nodes_kept(self):
        trace = ContactTrace(
            [Contact.make(0, 1, 0.0, 1.0)], node_ids=[0, 1, 2]
        )
        graph = contact_graph(trace)
        assert 2 in graph.nodes
        assert graph.degree[2] == 0


class TestLargestComponent:
    def test_picks_biggest(self):
        table = RateTable({(0, 1): 1.0, (1, 2): 1.0, (5, 6): 1.0})
        graph = contact_graph(table)
        biggest = largest_component(graph)
        assert set(biggest.nodes) == {0, 1, 2}

    def test_empty_graph(self):
        import networkx as nx

        assert largest_component(nx.Graph()).number_of_nodes() == 0
