"""Tests for inter-contact distribution analysis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contacts.intercontact import (
    aggregate_intercontact_samples,
    ccdf,
    exponential_tail_quantiles,
    fit_exponential,
    ks_distance,
)
from repro.mobility.trace import Contact, ContactTrace


class TestCcdf:
    def test_values(self):
        x, p = ccdf([1.0, 2.0, 3.0, 4.0])
        assert list(x) == [1.0, 2.0, 3.0, 4.0]
        assert list(p) == pytest.approx([0.75, 0.5, 0.25, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ccdf([])

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_monotone_nonincreasing(self, samples):
        x, p = ccdf(samples)
        assert (np.diff(p) <= 1e-12).all()
        assert (np.diff(x) >= 0).all()


class TestFitExponential:
    def test_mle_is_inverse_mean(self):
        assert fit_exponential([1.0, 3.0]) == 0.5

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_exponential([])
        with pytest.raises(ValueError):
            fit_exponential([-1.0])
        with pytest.raises(ValueError):
            fit_exponential([0.0, 0.0])

    def test_recovers_rate(self, rng):
        samples = rng.exponential(scale=4.0, size=20000)
        assert fit_exponential(samples) == pytest.approx(0.25, rel=0.05)


class TestKsDistance:
    def test_exponential_samples_fit_well(self, rng):
        samples = rng.exponential(scale=1.0, size=5000)
        assert ks_distance(samples, 1.0) < 0.03

    def test_wrong_rate_fits_poorly(self, rng):
        samples = rng.exponential(scale=1.0, size=5000)
        assert ks_distance(samples, 10.0) > 0.3

    def test_uniform_samples_fit_poorly(self, rng):
        samples = rng.uniform(0.9, 1.1, size=5000)
        assert ks_distance(samples, 1.0) > 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            ks_distance([1.0], 0.0)
        with pytest.raises(ValueError):
            ks_distance([], 1.0)

    def test_bounded_by_one(self, rng):
        samples = rng.exponential(scale=1.0, size=100)
        assert 0.0 <= ks_distance(samples, 0.001) <= 1.0


class TestAggregation:
    def make_trace(self):
        contacts = []
        # pair (0,1): gaps of 10; pair (2,3): gaps of 100
        for k in range(5):
            contacts.append(Contact.make(0, 1, k * 11.0, k * 11.0 + 1.0))
            contacts.append(Contact.make(2, 3, k * 101.0, k * 101.0 + 1.0))
        return ContactTrace(contacts)

    def test_pooled_raw(self):
        samples = aggregate_intercontact_samples(self.make_trace())
        assert len(samples) == 8
        assert sorted(set(samples)) == [10.0, 100.0]

    def test_normalised_removes_heterogeneity(self):
        samples = aggregate_intercontact_samples(self.make_trace(), normalise=True)
        assert np.allclose(samples, 1.0)

    def test_min_gaps_filter(self):
        trace = ContactTrace(
            [
                Contact.make(0, 1, 0.0, 1.0),
                Contact.make(0, 1, 10.0, 11.0),  # one gap only
            ]
        )
        assert len(aggregate_intercontact_samples(trace, min_gaps_per_pair=2)) == 0
        assert len(aggregate_intercontact_samples(trace, min_gaps_per_pair=1)) == 1


class TestTailQuantiles:
    def test_values(self):
        [q] = exponential_tail_quantiles(1.0, [math.exp(-2.0)])
        assert q == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_tail_quantiles(0.0, [0.5])
        with pytest.raises(ValueError):
            exponential_tail_quantiles(1.0, [1.5])
