"""Tests for nodes and the protocol-handler dispatch."""

import pytest

from repro.mobility.trace import Contact, ContactTrace
from repro.sim.messages import Message
from repro.sim.node import Node, ProtocolHandler, make_nodes
from tests.conftest import build_network


class Recorder(ProtocolHandler):
    """Records every hook invocation."""

    def __init__(self, kinds=None):
        super().__init__()
        if kinds is not None:
            self.handled_kinds = frozenset(kinds)
        self.events = []

    def on_start(self):
        self.events.append(("start",))

    def on_contact_start(self, peer):
        self.events.append(("contact_start", peer.node_id))

    def on_contact_end(self, peer):
        self.events.append(("contact_end", peer.node_id))

    def on_message(self, message, sender):
        self.events.append(("message", message.kind, sender.node_id))


def two_node_network():
    trace = ContactTrace(
        [Contact.make(0, 1, 10.0, 20.0)], node_ids=[0, 1], name="pair"
    )
    return build_network(trace)


class TestHandlers:
    def test_contact_hooks_fire_on_both_sides(self):
        net = two_node_network()
        rec0 = net.nodes[0].add_handler(Recorder())
        rec1 = net.nodes[1].add_handler(Recorder())
        net.run()
        assert ("contact_start", 1) in rec0.events
        assert ("contact_end", 1) in rec0.events
        assert ("contact_start", 0) in rec1.events
        assert ("contact_end", 0) in rec1.events

    def test_start_fires_once_per_handler(self):
        net = two_node_network()
        rec = net.nodes[0].add_handler(Recorder())
        net.start()
        net.start()
        assert rec.events.count(("start",)) == 1

    def test_message_dispatch_filters_by_kind(self):
        net = two_node_network()
        sender = net.nodes[0]
        all_kinds = net.nodes[1].add_handler(Recorder())
        only_a = net.nodes[1].add_handler(Recorder(kinds={"a"}))
        net.start()
        net.sim.run(until=12.0)  # contact is open
        sender.send(Message(kind="a", src=0, dst=1, created_at=net.sim.now), net.nodes[1])
        sender.send(Message(kind="b", src=0, dst=1, created_at=net.sim.now), net.nodes[1])
        net.sim.run(until=13.0)
        assert ("message", "a", 0) in all_kinds.events
        assert ("message", "b", 0) in all_kinds.events
        assert ("message", "a", 0) in only_a.events
        assert ("message", "b", 0) not in only_a.events

    def test_find_handler(self):
        node = Node(0)
        rec = node.add_handler(Recorder())
        assert node.find_handler(Recorder) is rec
        assert node.find_handler(int) is None


class TestNeighbors:
    def test_neighbors_track_open_contacts(self):
        net = two_node_network()
        net.start()
        net.sim.run(until=5.0)
        assert not net.nodes[0].in_contact_with(1)
        net.sim.run(until=15.0)
        assert net.nodes[0].in_contact_with(1)
        assert net.nodes[0].neighbors == frozenset({1})
        net.sim.run(until=25.0)
        assert not net.nodes[0].in_contact_with(1)


class TestErrors:
    def test_sim_without_network_raises(self):
        with pytest.raises(RuntimeError):
            Node(0).sim

    def test_send_without_network_raises(self):
        message = Message(kind="x", src=0, dst=1, created_at=0.0)
        with pytest.raises(RuntimeError):
            Node(0).send(message, Node(1))


def test_make_nodes():
    nodes = make_nodes([3, 1, 2])
    assert sorted(nodes) == [1, 2, 3]
    assert all(nodes[n].node_id == n for n in nodes)
