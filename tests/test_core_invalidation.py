"""Protocol tests for the invalidation-based consistency baseline."""

import numpy as np
import pytest

from repro.caching.items import DataCatalog
from repro.core.scheme import build_simulation
from repro.mobility.calibration import get_profile
from repro.mobility.trace import Contact, ContactTrace
from tests.conftest import build_network

DAY = 86400.0


def wire_line(line_trace, caching=(2,)):
    """Source at node 0; chain contacts propagate notices multi-hop."""
    from repro.caching.items import DataItem, VersionHistory
    from repro.caching.store import CacheStore
    from repro.core.refresh import InvalidationRefreshHandler, SourceHandler
    from repro.sim.stats import StatsRegistry

    item = DataItem(item_id=0, source=0, refresh_interval=100.0, lifetime=1e9,
                    size=100)
    catalog = DataCatalog([item])
    history = VersionHistory()
    stats = StatsRegistry()
    update_log = []
    net = build_network(line_trace, stats=stats)
    handlers = {}
    for nid, node in net.nodes.items():
        handler = InvalidationRefreshHandler(
            catalog=catalog,
            caching_nodes=frozenset(caching),
            update_log=update_log,
            stats=stats,
            store=CacheStore() if nid in caching else None,
        )
        node.add_handler(handler)
        handlers[nid] = handler
    source = SourceHandler(items=[item], history=history, stats=stats)
    net.nodes[0].add_handler(source)
    source.on_new_version(handlers[0].source_published)
    return net, handlers, stats, item


class TestInvalidationProtocol:
    def test_notices_spread_multihop(self, line_trace):
        net, handlers, stats, item = wire_line(line_trace)
        net.run(until=95.0)
        # the v1 notice reached every node over the chain
        assert all(h.noticed_version(0) == 1 for h in handlers.values())
        assert stats.counter_value("net.transfers.invalidate") > 0

    def test_stale_entry_dropped_on_notice(self, line_trace):
        net, handlers, stats, item = wire_line(line_trace)
        handlers[2].seed_entry(item, version=1, version_time=0.0)
        # v2 published at t=100; notice travels 0->1 (t=110), 1->2 (t=130)
        net.run(until=135.0)
        assert handlers[2].store.peek(0) is None
        assert stats.counter_value("refresh.invalidated") == 1

    def test_source_pushes_data_on_direct_contact(self):
        trace = ContactTrace(
            [Contact.make(0, 1, 10.0, 20.0), Contact.make(0, 1, 150.0, 160.0)],
            node_ids=[0, 1],
        )
        net, handlers, stats, item = wire_line(trace, caching=(1,))
        net.run(until=200.0)
        entry = handlers[1].store.peek(0)
        assert entry is not None
        assert entry.version == 2  # refreshed on the second contact

    def test_notice_does_not_carry_data(self, line_trace):
        net, handlers, stats, item = wire_line(line_trace)
        net.run(until=95.0)
        # caching node 2 heard about v1 but never met the source: no entry
        assert handlers[2].noticed_version(0) == 1
        assert handlers[2].store.peek(0) is None


class TestInvalidationScheme:
    @staticmethod
    def _install_staleness_sampler(runtime, interval, until):
        """Record (held, stale) over time -- staleness of what IS cached."""
        samples = []

        def sample():
            now = runtime.sim.now
            held = stale = 0
            for nid in runtime.caching_nodes:
                for entry in runtime.stores[nid].entries():
                    held += 1
                    if not runtime.history.is_fresh(
                        entry.item_id, entry.version, now
                    ):
                        stale += 1
            samples.append((held, stale))
            if now + interval <= until:
                runtime.sim.schedule_after(interval, sample)

        runtime.sim.schedule_at(interval, sample)
        return samples

    @pytest.fixture(scope="class")
    def runtimes(self):
        trace = get_profile("small").generate(np.random.default_rng(3),
                                              duration=2 * DAY)
        catalog = DataCatalog.uniform(
            3, sources=[trace.node_ids[0]], refresh_interval=4 * 3600.0
        )
        out = {}
        for scheme in ("invalidate", "hdr", "source"):
            runtime = build_simulation(trace, catalog, scheme=scheme,
                                       num_caching_nodes=5, seed=1,
                                       record_transfers=True)
            runtime.install_freshness_probe(interval=1800.0, until=2 * DAY)
            samples = self._install_staleness_sampler(runtime, 1800.0, 2 * DAY)
            runtime.run(until=2 * DAY)
            out[scheme] = (runtime, samples)
        return {name: rt for name, (rt, _) in out.items()}, {
            name: s for name, (_, s) in out.items()
        }

    def test_invalidation_drops_stale_copies(self, runtimes):
        runtime_map, samples_map = runtimes
        runtime = runtime_map["invalidate"]
        assert runtime.stats.counter_value("refresh.invalidated") > 0

        def staleness(samples):
            held = sum(h for h, _ in samples)
            stale = sum(s for _, s in samples)
            return stale / held if held else float("nan")

        # what invalidation keeps cached is stale far less of the time
        # than what source-only keeps cached
        assert staleness(samples_map["invalidate"]) < 0.5 * staleness(
            samples_map["source"]
        )

    def test_messages_cheap_in_bytes(self, runtimes):
        runtime_map, _ = runtimes
        invalidate = runtime_map["invalidate"]
        hdr = runtime_map["hdr"]
        # invalidation floods many tiny messages: higher count than
        # source-only-style data pushes, far fewer bytes per message
        bytes_per_message_inv = (
            invalidate.refresh_bytes() / invalidate.refresh_overhead()
        )
        bytes_per_message_hdr = hdr.refresh_bytes() / hdr.refresh_overhead()
        assert bytes_per_message_inv < 0.5 * bytes_per_message_hdr

    def test_slot_freshness_near_source_only(self, runtimes):
        from repro.analysis.metrics import freshness_summary

        runtime_map, _ = runtimes
        inv = freshness_summary(runtime_map["invalidate"], t0=0.2 * DAY).freshness
        hdr = freshness_summary(runtime_map["hdr"], t0=0.2 * DAY).freshness
        assert inv < hdr  # invalidation empties caches; hdr fills them
