"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E3"])
        assert args.experiment == "E3"
        assert args.fast is False

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scheme == "hdr"
        assert args.profile == "small"


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("E1", "E4", "E8"):
            assert exp_id in out

    def test_trace_stats(self, capsys):
        assert main(["trace-stats", "small"]) == 0
        out = capsys.readouterr().out
        assert "small" in out
        assert "contacts" in out

    def test_trace_stats_unknown_profile(self, capsys):
        assert main(["trace-stats", "nope"]) == 2

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2

    def test_run_single_experiment_fast(self, capsys):
        assert main(["run", "e1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out

    def test_analyze_trace(self, capsys, tmp_path):
        path = tmp_path / "t.txt"
        lines = []
        for k in range(6):
            lines.append(f"0 1 {k * 100} {k * 100 + 5}")
            lines.append(f"1 2 {k * 100 + 50} {k * 100 + 55}")
        path.write_text("\n".join(lines) + "\n")
        assert main(["analyze-trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "contacts" in out
        assert "centrality" in out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "--scheme", "source", "--days", "1",
            "--caching-nodes", "3", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "freshness" in out
        assert "queries issued" in out


class TestBenchAndProfileParser:
    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.output == "BENCH_runner.json"
        assert args.quick is False
        assert args.check_baseline is None

    def test_bench_flags(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "-o", "out.json", "--check-baseline", "base.json"]
        )
        assert args.quick is True
        assert args.output == "out.json"
        assert args.check_baseline == "base.json"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.scheme == "hdr"
        assert args.sort == "cumulative"
        assert args.top == 25
        assert args.quick is False
        assert args.output is None

    def test_profile_rejects_unknown_sort(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--sort", "bogus"])


class TestProfileCommand:
    def test_profile_quick_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "profile.pstats"
        assert main(
            ["profile", "--quick", "--top", "3", "--sort", "tottime",
             "-o", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "scheme=hdr" in out
        assert "function calls" in out  # pstats table printed
        assert out_path.exists()
