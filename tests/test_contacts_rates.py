"""Tests for rate estimation: offline MLE/EWMA and the online estimator."""

import math

import numpy as np
import pytest

from repro.contacts.rates import ContactRateEstimator, RateTable, ewma_rates, mle_rates
from repro.mobility.trace import Contact, ContactTrace
from tests.conftest import build_network


class TestRateTable:
    def test_symmetric_access(self):
        table = RateTable()
        table.set(2, 1, 0.5)
        assert table.rate(1, 2) == 0.5
        assert table.rate(2, 1) == 0.5

    def test_default_zero(self):
        assert RateTable().rate(0, 1) == 0.0
        assert RateTable().rate(0, 1, default=9.0) == 9.0

    def test_self_rate_rejected(self):
        with pytest.raises(ValueError):
            RateTable().set(1, 1, 0.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            RateTable().set(0, 1, -0.5)

    def test_neighbors(self):
        table = RateTable({(0, 1): 0.5, (0, 2): 0.25, (1, 2): 0.0})
        assert table.neighbors(0) == {1: 0.5, 2: 0.25}
        assert table.neighbors(1) == {0: 0.5}

    def test_nodes(self):
        table = RateTable({(0, 1): 0.5, (4, 7): 0.1})
        assert table.nodes() == {0, 1, 4, 7}

    def test_matrix(self):
        table = RateTable({(0, 1): 0.5})
        matrix = table.matrix([0, 1, 2])
        assert matrix[0, 1] == 0.5
        assert matrix[1, 0] == 0.5
        assert matrix[2, 0] == 0.0
        assert (np.diag(matrix) == 0).all()

    def test_len(self):
        assert len(RateTable({(0, 1): 0.5, (1, 2): 0.2})) == 2


class TestMleRates:
    def test_count_over_window(self):
        trace = ContactTrace(
            [Contact.make(0, 1, t, t + 1) for t in (10.0, 110.0, 210.0)]
        )
        # window is [10, 211] -> 3 contacts / 201 s
        rates = mle_rates(trace)
        assert rates.rate(0, 1) == pytest.approx(3 / 201.0)

    def test_explicit_window(self):
        trace = ContactTrace([Contact.make(0, 1, 10.0, 11.0)])
        rates = mle_rates(trace, t0=0.0, t1=100.0)
        assert rates.rate(0, 1) == pytest.approx(0.01)

    def test_contacts_outside_window_excluded(self):
        trace = ContactTrace(
            [Contact.make(0, 1, 10.0, 11.0), Contact.make(0, 1, 500.0, 501.0)]
        )
        rates = mle_rates(trace, t0=0.0, t1=100.0)
        assert rates.rate(0, 1) == pytest.approx(0.01)

    def test_empty_window_raises(self):
        trace = ContactTrace([Contact.make(0, 1, 5.0, 6.0)])
        with pytest.raises(ValueError):
            mle_rates(trace, t0=10.0, t1=10.0)

    def test_recovers_poisson_rate(self, rng):
        from repro.mobility.synthetic import PoissonContactModel, homogeneous_rate_matrix

        true_rate = 0.01
        model = PoissonContactModel(homogeneous_rate_matrix(2, true_rate), mean_duration=1.0)
        trace = model.generate(100000.0, rng)
        rates = mle_rates(trace, t0=0.0, t1=100000.0)
        assert rates.rate(0, 1) == pytest.approx(true_rate, rel=0.1)


class TestEwmaRates:
    def test_single_contact_uses_age(self):
        trace = ContactTrace([Contact.make(0, 1, 10.0, 11.0)])
        rates = ewma_rates(trace, t1=110.0)
        assert rates.rate(0, 1) == pytest.approx(1.0 / 100.0)

    def test_steady_gaps_converge_to_inverse_gap(self):
        contacts = [Contact.make(0, 1, t, t + 1) for t in range(0, 1000, 100)]
        rates = ewma_rates(ContactTrace(contacts), alpha=0.5)
        assert rates.rate(0, 1) == pytest.approx(1.0 / 99.0, rel=0.01)

    def test_recent_gaps_weighted_more(self):
        # gaps: 99 (old), then 9 (recent x3): EWMA must sit near 1/9 not 1/99
        contacts = [
            Contact.make(0, 1, 0.0, 1.0),
            Contact.make(0, 1, 100.0, 101.0),
            Contact.make(0, 1, 110.0, 111.0),
            Contact.make(0, 1, 120.0, 121.0),
        ]
        rates = ewma_rates(ContactTrace(contacts), alpha=0.6)
        assert rates.rate(0, 1) > 1.0 / 30.0

    def test_alpha_validated(self):
        trace = ContactTrace([Contact.make(0, 1, 0.0, 1.0)])
        with pytest.raises(ValueError):
            ewma_rates(trace, alpha=0.0)
        with pytest.raises(ValueError):
            ewma_rates(trace, alpha=1.5)


class TestOnlineEstimator:
    def make_net(self):
        contacts = [Contact.make(0, 1, t, t + 5) for t in (100.0, 300.0, 500.0)]
        trace = ContactTrace(contacts, node_ids=[0, 1, 2])
        net = build_network(trace)
        est = net.nodes[0].add_handler(ContactRateEstimator())
        net.start()
        return net, est

    def test_cumulative_rate(self):
        net, est = self.make_net()
        net.sim.run(until=1000.0)
        # 3 contacts over 1000 s
        assert est.rate_to(1) == pytest.approx(3 / 1000.0)

    def test_unknown_peer_zero(self):
        net, est = self.make_net()
        net.sim.run(until=1000.0)
        assert est.rate_to(2) == 0.0
        assert est.expected_meeting_delay(2) == math.inf

    def test_expected_meeting_delay(self):
        net, est = self.make_net()
        net.sim.run(until=1000.0)
        assert est.expected_meeting_delay(1) == pytest.approx(1000.0 / 3)

    def test_known_peers(self):
        net, est = self.make_net()
        net.sim.run(until=1000.0)
        assert set(est.known_peers()) == {1}

    def test_ewma_mode_tracks_gaps(self):
        contacts = [Contact.make(0, 1, t, t + 5) for t in (0.0, 100.0, 200.0, 300.0)]
        trace = ContactTrace(contacts, node_ids=[0, 1])
        net = build_network(trace)
        est = net.nodes[0].add_handler(ContactRateEstimator(mode="ewma"))
        net.start()
        net.sim.run(until=400.0)
        # gaps of 100 s between starts: 95 s end-to-start
        assert est.rate_to(1) == pytest.approx(1.0 / 95.0, rel=0.05)

    def test_ewma_falls_back_before_second_contact(self):
        contacts = [Contact.make(0, 1, 100.0, 105.0)]
        trace = ContactTrace(contacts, node_ids=[0, 1])
        net = build_network(trace)
        est = net.nodes[0].add_handler(ContactRateEstimator(mode="ewma"))
        net.start()
        net.sim.run(until=200.0)
        assert est.rate_to(1) == pytest.approx(1 / 200.0)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ContactRateEstimator(mode="nonsense")

    def test_online_converges_to_offline(self, rng):
        """On a generated trace, the online estimate approaches the MLE."""
        from repro.mobility.synthetic import PoissonContactModel, homogeneous_rate_matrix

        model = PoissonContactModel(homogeneous_rate_matrix(3, 0.005), mean_duration=1.0)
        trace = model.generate(50000.0, rng)
        net = build_network(trace)
        est = net.nodes[0].add_handler(ContactRateEstimator())
        net.run(until=50000.0)
        offline = mle_rates(trace, t0=0.0, t1=50000.0)
        for peer in (1, 2):
            assert est.rate_to(peer) == pytest.approx(offline.rate(0, peer), rel=0.05)
