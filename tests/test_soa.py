"""SoA backend equivalence tests.

The vectorised structure-of-arrays executor (``repro.core.soa``) must be
*metric-identical* to the object backend: every probe sample, message
counter, and update-log aggregate agrees field-for-field
(``RunMetrics.same_as``).  These tests pin that contract:

- an exact sweep over every SoA-supported scheme at a fixed seed;
- a hypothesis property test over random (scheme, seed) draws;
- the same identity with the event slab shrunk to a handful of events,
  forcing many slab reloads and the timestamp-alignment edge cases;
- unsupported options (queries, tracing, the invalidate scheme) must be
  rejected loudly rather than silently ignored.
"""

import pytest
from hypothesis import HealthCheck, given, settings as hsettings
from hypothesis import strategies as st

from repro.core import soa as soa_module
from repro.experiments.config import DAY, Settings
from repro.experiments.runner import make_trace, run_once

#: Every scheme the SoA executor supports ("invalidate" is object-only).
SOA_SCHEMES = ("hdr", "flat", "random", "source", "flooding", "none")


def small_settings(duration_days: float = 2.0) -> Settings:
    return Settings.fast().with_(duration=duration_days * DAY)


def run_both(scheme: str, seed: int, settings: Settings):
    trace = make_trace(settings, seed)
    obj = run_once(trace, scheme, settings, seed=seed, backend="object")
    soa = run_once(trace, scheme, settings, seed=seed, backend="soa")
    return obj, soa


class TestBackendEquivalence:
    @pytest.mark.parametrize("scheme", SOA_SCHEMES)
    def test_identical_metrics_per_scheme(self, scheme):
        obj, soa = run_both(scheme, seed=3, settings=small_settings())
        assert obj.same_as(soa), f"{scheme}: SoA diverged from object backend"

    @hsettings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scheme=st.sampled_from(SOA_SCHEMES),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_identical_metrics_random_draws(self, scheme, seed):
        obj, soa = run_both(scheme, seed=seed, settings=small_settings())
        assert obj.same_as(soa), (
            f"{scheme} seed={seed}: SoA diverged from object backend"
        )

    def test_identical_with_tiny_slabs(self, monkeypatch):
        """Shrinking the slab forces reloads mid-run; slab boundaries
        must never split a timestamp's events across batches."""
        monkeypatch.setattr(soa_module, "SLAB_EVENTS", 7)
        obj, soa = run_both("hdr", seed=1, settings=small_settings())
        assert obj.same_as(soa)

    def test_identical_without_refresh_jitter(self):
        settings = small_settings().with_(refresh_jitter=0.0)
        obj, soa = run_both("hdr", seed=2, settings=settings)
        assert obj.same_as(soa)


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        settings = small_settings()
        trace = make_trace(settings, 1)
        with pytest.raises(ValueError, match="backend"):
            run_once(trace, "hdr", settings, seed=1, backend="gpu")

    def test_queries_rejected_on_soa(self):
        settings = small_settings()
        trace = make_trace(settings, 1)
        with pytest.raises(ValueError, match="quer"):
            run_once(trace, "hdr", settings, seed=1, backend="soa",
                     with_queries=True)

    def test_invalidate_scheme_rejected_on_soa(self):
        settings = small_settings()
        trace = make_trace(settings, 1)
        with pytest.raises(ValueError):
            run_once(trace, "invalidate", settings, seed=1, backend="soa")
