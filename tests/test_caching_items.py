"""Tests for data items, cache entries and the version history."""

import numpy as np
import pytest

from repro.caching.items import CacheEntry, DataCatalog, DataItem, VersionHistory


def item(**overrides) -> DataItem:
    defaults = dict(
        item_id=0, source=1, refresh_interval=100.0, lifetime=200.0
    )
    defaults.update(overrides)
    return DataItem(**defaults)


class TestDataItem:
    def test_validation(self):
        with pytest.raises(ValueError):
            item(refresh_interval=0.0)
        with pytest.raises(ValueError):
            item(lifetime=-1.0)
        with pytest.raises(ValueError):
            item(freshness_requirement=1.0)
        with pytest.raises(ValueError):
            item(freshness_requirement=0.0)
        with pytest.raises(ValueError):
            item(size=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            item().item_id = 5


class TestCacheEntry:
    def test_expiry_uses_version_time(self):
        entry = CacheEntry(item_id=0, version=1, version_time=50.0, cached_at=120.0)
        data_item = item(lifetime=200.0)
        assert not entry.expired(249.0, data_item)
        assert entry.expired(250.0, data_item)


class TestVersionHistory:
    def test_record_and_lookup(self):
        history = VersionHistory()
        history.record(0, 1, 10.0)
        history.record(0, 2, 110.0)
        assert history.current_version(0, 5.0) == 0
        assert history.current_version(0, 50.0) == 1
        assert history.current_version(0, 110.0) == 2
        assert history.version_time(0, 2) == 110.0
        assert history.num_versions(0) == 2

    def test_versions_must_be_sequential(self):
        history = VersionHistory()
        with pytest.raises(ValueError):
            history.record(0, 2, 0.0)
        history.record(0, 1, 0.0)
        with pytest.raises(ValueError):
            history.record(0, 1, 1.0)

    def test_time_must_not_regress(self):
        history = VersionHistory()
        history.record(0, 1, 100.0)
        with pytest.raises(ValueError):
            history.record(0, 2, 50.0)

    def test_version_time_unknown_raises(self):
        history = VersionHistory()
        with pytest.raises(KeyError):
            history.version_time(0, 1)

    def test_is_fresh(self):
        history = VersionHistory()
        history.record(0, 1, 0.0)
        history.record(0, 2, 100.0)
        assert history.is_fresh(0, 1, 50.0)
        assert not history.is_fresh(0, 1, 150.0)
        assert history.is_fresh(0, 2, 150.0)
        assert not history.is_fresh(0, 0, 50.0)

    def test_independent_items(self):
        history = VersionHistory()
        history.record(0, 1, 0.0)
        history.record(7, 1, 50.0)
        assert history.num_versions(0) == 1
        assert history.num_versions(7) == 1


class TestDataCatalog:
    def test_add_and_get(self):
        catalog = DataCatalog([item()])
        assert catalog.get(0).source == 1
        assert 0 in catalog
        assert len(catalog) == 1

    def test_duplicate_id_rejected(self):
        catalog = DataCatalog([item()])
        with pytest.raises(ValueError):
            catalog.add(item())

    def test_items_of_source(self):
        catalog = DataCatalog([item(item_id=0, source=1), item(item_id=1, source=2)])
        assert [i.item_id for i in catalog.items_of_source(1)] == [0]

    def test_uniform_round_robin(self):
        catalog = DataCatalog.uniform(4, sources=[10, 20], refresh_interval=100.0)
        assert [catalog.get(k).source for k in range(4)] == [10, 20, 10, 20]

    def test_uniform_default_lifetime(self):
        catalog = DataCatalog.uniform(1, sources=[1], refresh_interval=100.0)
        assert catalog.get(0).lifetime == 200.0

    def test_uniform_random_assignment(self):
        rng = np.random.default_rng(1)
        catalog = DataCatalog.uniform(
            50, sources=[1, 2, 3], refresh_interval=10.0, rng=rng
        )
        used = {catalog.get(k).source for k in range(50)}
        assert used == {1, 2, 3}

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            DataCatalog.uniform(0, sources=[1], refresh_interval=10.0)
        with pytest.raises(ValueError):
            DataCatalog.uniform(1, sources=[], refresh_interval=10.0)

    def test_item_ids_sorted(self):
        catalog = DataCatalog([item(item_id=5), item(item_id=2)])
        assert catalog.item_ids == [2, 5]
