"""Public API surface checks: everything advertised is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.mobility",
    "repro.contacts",
    "repro.routing",
    "repro.caching",
    "repro.core",
    "repro.baselines",
    "repro.workloads",
    "repro.analysis",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} does not declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_baseline_configs_are_registered_schemes():
    from repro.baselines import (
        COMPARISON_ORDER,
        FLAT_REPLICATION,
        FLOODING,
        INVALIDATION,
        NO_REFRESH,
        RANDOM_ASSIGNMENT,
        SOURCE_ONLY,
    )
    from repro.core.scheme import SCHEMES

    for config in (SOURCE_ONLY, FLOODING, FLAT_REPLICATION, RANDOM_ASSIGNMENT,
                   NO_REFRESH, INVALIDATION):
        assert SCHEMES[config.name] is config
    assert set(COMPARISON_ORDER) <= set(SCHEMES)


def test_every_public_module_has_docstring():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} lacks a module docstring"


def test_every_public_callable_has_docstring():
    import repro

    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"
