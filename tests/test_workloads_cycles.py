"""Tests for diurnal/flash-crowd query cycles and thinned scheduling."""

import numpy as np
import pytest

from repro.workloads.cycles import (
    DEFAULT_QUERY_ACTIVITY,
    HOUR,
    DiurnalCycle,
    FlashCrowd,
    QueryCycle,
    schedule_cycle_queries,
)


class TestDiurnalCycle:
    def test_default_profile(self):
        cycle = DiurnalCycle()
        assert cycle.activity == DEFAULT_QUERY_ACTIVITY
        assert len(cycle.activity) == 24

    def test_hour_lookup_and_wrap(self):
        cycle = DiurnalCycle(activity=tuple(range(24)))
        assert cycle.rate_multiplier(0.0) == 0
        assert cycle.rate_multiplier(5.5 * HOUR) == 5
        assert cycle.rate_multiplier(29.0 * HOUR) == 5  # wraps past midnight

    def test_peak(self):
        cycle = DiurnalCycle(activity=(0.5,) * 23 + (3.0,))
        assert cycle.peak() == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalCycle(activity=(1.0, 2.0))
        with pytest.raises(ValueError):
            DiurnalCycle(activity=(-1.0,) + (1.0,) * 23)
        with pytest.raises(ValueError):
            DiurnalCycle(activity=(0.0,) * 24)


class TestFlashCrowd:
    def test_window(self):
        crowd = FlashCrowd(start=10 * HOUR, length=2 * HOUR)
        assert not crowd.active_at(9.9 * HOUR)
        assert crowd.active_at(11 * HOUR)
        assert not crowd.active_at(12.1 * HOUR)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd(start=-1.0, length=10.0)
        with pytest.raises(ValueError):
            FlashCrowd(start=0.0, length=0.0)
        with pytest.raises(ValueError):
            FlashCrowd(start=0.0, length=1.0, boost=0.5)
        with pytest.raises(ValueError):
            FlashCrowd(start=0.0, length=1.0, focus=0)
        with pytest.raises(ValueError):
            FlashCrowd(start=0.0, length=1.0, focus_weight=1.5)


class TestQueryCycle:
    def test_flat_cycle(self):
        cycle = QueryCycle()
        assert cycle.rate_multiplier(123.0) == 1.0
        assert cycle.peak() == 1.0
        assert cycle.crowd_at(123.0) is None

    def test_combined_multiplier(self):
        cycle = QueryCycle(
            diurnal=DiurnalCycle(activity=(2.0,) * 24),
            crowds=(FlashCrowd(start=0.0, length=HOUR, boost=3.0),),
        )
        assert cycle.rate_multiplier(0.5 * HOUR) == 6.0
        assert cycle.rate_multiplier(2 * HOUR) == 2.0
        assert cycle.peak() == 6.0

    def test_crowd_at_returns_active_crowd(self):
        crowd = FlashCrowd(start=HOUR, length=HOUR)
        cycle = QueryCycle(crowds=(crowd,))
        assert cycle.crowd_at(1.5 * HOUR) is crowd
        assert cycle.crowd_at(3 * HOUR) is None


def build_runtime(with_queries=True):
    from repro.core.scheme import build_simulation
    from repro.experiments.config import Settings
    from repro.experiments.runner import choose_sources, make_catalog, make_trace

    settings = Settings.fast()
    trace = make_trace(settings, seed=1)
    catalog = make_catalog(settings, choose_sources(trace, settings))
    return build_simulation(trace, catalog, scheme="hdr",
                            num_caching_nodes=settings.num_caching_nodes,
                            seed=1, with_queries=with_queries)


@pytest.fixture(scope="module")
def runtime():
    return build_runtime()


class TestScheduleCycleQueries:
    def test_deterministic(self, runtime):
        cycle = QueryCycle(diurnal=DiurnalCycle())
        a = schedule_cycle_queries(runtime, rate_per_node=4 / 86400.0,
                                   duration=86400.0,
                                   rng=np.random.default_rng(11), cycle=cycle)
        b = schedule_cycle_queries(runtime, rate_per_node=4 / 86400.0,
                                   duration=86400.0,
                                   rng=np.random.default_rng(11), cycle=cycle)
        assert a == b

    def test_boost_schedules_more_queries(self, runtime):
        flat = QueryCycle()
        boosted = QueryCycle(
            crowds=(FlashCrowd(start=0.0, length=86400.0, boost=4.0),)
        )
        rate = 4 / 86400.0
        base = schedule_cycle_queries(runtime, rate, 86400.0,
                                      np.random.default_rng(3), flat)
        more = schedule_cycle_queries(runtime, rate, 86400.0,
                                      np.random.default_rng(3), boosted)
        assert more > base

    def test_rejects_negative_rate(self, runtime):
        with pytest.raises(ValueError):
            schedule_cycle_queries(runtime, -1.0, 10.0,
                                   np.random.default_rng(0), QueryCycle())

    def test_rejects_runtime_without_queries(self):
        bare = build_runtime(with_queries=False)
        with pytest.raises(ValueError):
            schedule_cycle_queries(bare, 1.0, 10.0,
                                   np.random.default_rng(0), QueryCycle())
