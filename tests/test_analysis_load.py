"""Tests for the transmission-load distribution metric."""

import math

import numpy as np
import pytest

from repro.analysis.metrics import transmission_load
from repro.caching.items import DataCatalog
from repro.core.scheme import build_simulation
from repro.mobility.calibration import get_profile

DAY = 86400.0


@pytest.fixture(scope="module")
def trace():
    return get_profile("small").generate(np.random.default_rng(9), duration=2 * DAY)


@pytest.fixture(scope="module")
def catalog(trace):
    return DataCatalog.uniform(
        3, sources=[trace.node_ids[0]], refresh_interval=4 * 3600.0
    )


def run(trace, catalog, scheme):
    runtime = build_simulation(trace, catalog, scheme=scheme,
                               num_caching_nodes=6, seed=1,
                               record_transfers=True)
    runtime.run(until=2 * DAY)
    return runtime


class TestTransmissionLoad:
    def test_requires_recording(self, trace, catalog):
        runtime = build_simulation(trace, catalog, scheme="hdr",
                                   num_caching_nodes=6, seed=1)
        with pytest.raises(ValueError, match="record_transfers"):
            transmission_load(runtime)

    def test_counts_refresh_plane_only(self, trace, catalog):
        runtime = run(trace, catalog, "hdr")
        load = transmission_load(runtime)
        assert load.total == runtime.refresh_overhead()
        assert load.max_load >= load.mean_load
        assert 0.0 <= load.gini <= 1.0

    def test_source_only_concentrates_load(self, trace, catalog):
        source_only = transmission_load(run(trace, catalog, "source"))
        # a single sender does everything: degenerate distribution
        assert source_only.senders == 1
        assert source_only.max_load == source_only.total

    def test_hierarchy_spreads_load(self, trace, catalog):
        hdr = transmission_load(run(trace, catalog, "hdr"))
        flat = transmission_load(run(trace, catalog, "flat"))
        assert hdr.senders > 1
        # the tree's interior carries traffic the flat star leaves at the
        # source, so the source's share of the total is lower under hdr
        def source_share(runtime_load, runtime):
            per_sender = {}
            for t in runtime.network.transfers:
                if t.kind.startswith("refresh"):
                    per_sender[t.sender] = per_sender.get(t.sender, 0) + 1
            source = runtime.sources[0]
            return per_sender.get(source, 0) / runtime_load.total

        hdr_runtime = run(trace, catalog, "hdr")
        flat_runtime = run(trace, catalog, "flat")
        assert source_share(
            transmission_load(hdr_runtime), hdr_runtime
        ) < source_share(transmission_load(flat_runtime), flat_runtime)

    def test_empty_run(self, trace, catalog):
        runtime = build_simulation(trace, catalog, scheme="none",
                                   num_caching_nodes=6, seed=1,
                                   record_transfers=True)
        runtime.run(until=3600.0)
        load = transmission_load(runtime)
        assert load.total == 0
        assert math.isnan(load.gini)
