"""Tests for contact-based centrality metrics."""

import math

import pytest

from repro.contacts.centrality import (
    betweenness_centrality,
    contact_centrality,
    degree_centrality,
    rank_nodes,
)
from repro.contacts.graph import contact_graph
from repro.contacts.rates import RateTable


def star_rates(center=0, leaves=(1, 2, 3), rate=0.1):
    table = RateTable()
    for leaf in leaves:
        table.set(center, leaf, rate)
    return table


class TestContactCentrality:
    def test_center_of_star_wins(self):
        scores = contact_centrality(star_rates(), window=10.0)
        assert scores[0] > scores[1]

    def test_saturates_per_neighbor(self):
        """One very fast friend is worth at most 1; two slower friends more."""
        one_fast = RateTable({(0, 1): 100.0})
        two_slow = RateTable({(0, 1): 0.2, (0, 2): 0.2})
        fast_score = contact_centrality(one_fast, window=10.0)[0]
        slow_score = contact_centrality(two_slow, window=10.0)[0]
        assert fast_score <= 1.0
        assert slow_score > fast_score

    def test_formula(self):
        table = RateTable({(0, 1): 0.1})
        scores = contact_centrality(table, window=10.0)
        assert scores[0] == pytest.approx(1 - math.exp(-1.0))

    def test_window_validated(self):
        with pytest.raises(ValueError):
            contact_centrality(RateTable(), window=0.0)

    def test_explicit_node_ids(self):
        scores = contact_centrality(star_rates(), window=1.0, node_ids=[0, 1])
        assert set(scores) == {0, 1}


class TestDegreeCentrality:
    def test_sums_rates(self):
        scores = degree_centrality(star_rates(rate=0.1))
        assert scores[0] == pytest.approx(0.3)
        assert scores[1] == pytest.approx(0.1)


class TestBetweenness:
    def test_bridge_node_scores_highest(self):
        # two cliques joined through node 4
        table = RateTable()
        for a, b in [(0, 1), (0, 2), (1, 2), (5, 6), (5, 7), (6, 7)]:
            table.set(a, b, 1.0)
        table.set(2, 4, 1.0)
        table.set(4, 5, 1.0)
        scores = betweenness_centrality(contact_graph(table))
        assert scores[4] == max(scores.values())


class TestRankNodes:
    def test_descending_with_id_tiebreak(self):
        scores = {3: 1.0, 1: 2.0, 2: 1.0}
        assert rank_nodes(scores) == [1, 2, 3]

    def test_top_k(self):
        scores = {0: 3.0, 1: 2.0, 2: 1.0}
        assert rank_nodes(scores, top=2) == [0, 1]
