"""End-to-end integration tests: full simulations, cross-scheme ordering,
determinism, and the analytical-guarantee sanity check."""

import numpy as np
import pytest

from repro.analysis.metrics import freshness_summary, judge_queries, refresh_outcomes
from repro.caching.items import DataCatalog
from repro.core.scheme import build_simulation
from repro.mobility.calibration import get_profile
from repro.workloads.queries import schedule_queries

DAY = 86400.0


@pytest.fixture(scope="module")
def trace():
    return get_profile("small").generate(np.random.default_rng(7), duration=2 * DAY)


@pytest.fixture(scope="module")
def catalog(trace):
    return DataCatalog.uniform(
        num_items=4, sources=[trace.node_ids[0]], refresh_interval=4 * 3600.0
    )


def run_scheme(trace, catalog, scheme, seed=1, with_queries=False):
    runtime = build_simulation(
        trace, catalog, scheme=scheme, num_caching_nodes=5, seed=seed,
        with_queries=with_queries,
    )
    runtime.install_freshness_probe(interval=1800.0, until=2 * DAY)
    if with_queries:
        schedule_queries(
            runtime, rate_per_node=3 / DAY, duration=2 * DAY,
            rng=np.random.default_rng(99),
        )
    runtime.run(until=2 * DAY)
    return runtime


@pytest.fixture(scope="module")
def all_runtimes(trace, catalog):
    return {
        name: run_scheme(trace, catalog, name, with_queries=True)
        for name in ("hdr", "flooding", "flat", "random", "source", "none")
    }


def freshness_of(runtime):
    return freshness_summary(runtime, t0=0.1 * 2 * DAY).freshness


class TestSchemeOrdering:
    """The paper's headline comparisons, asserted as ordering invariants."""

    def test_flooding_is_freshness_ceiling(self, all_runtimes):
        top = freshness_of(all_runtimes["flooding"])
        for name in ("hdr", "flat", "random", "source", "none"):
            assert top >= freshness_of(all_runtimes[name]) - 0.02

    def test_hdr_beats_source_only(self, all_runtimes):
        assert freshness_of(all_runtimes["hdr"]) > freshness_of(
            all_runtimes["source"]
        ) + 0.05

    def test_hdr_beats_no_refresh(self, all_runtimes):
        assert freshness_of(all_runtimes["hdr"]) > freshness_of(all_runtimes["none"])

    def test_rate_aware_beats_random_assignment(self, all_runtimes):
        assert freshness_of(all_runtimes["hdr"]) >= freshness_of(
            all_runtimes["random"]
        ) - 0.02

    def test_flooding_costs_most_messages(self, all_runtimes):
        flood = all_runtimes["flooding"].refresh_overhead()
        for name in ("hdr", "flat", "random", "source", "none"):
            assert flood > all_runtimes[name].refresh_overhead()

    def test_hdr_much_cheaper_than_flooding(self, all_runtimes):
        assert (
            all_runtimes["hdr"].refresh_overhead()
            < 0.7 * all_runtimes["flooding"].refresh_overhead()
        )

    def test_source_only_minimum_active_overhead(self, all_runtimes):
        source = all_runtimes["source"].refresh_overhead()
        for name in ("hdr", "flat", "random", "flooding"):
            assert source <= all_runtimes[name].refresh_overhead()


class TestQueryPlane:
    def test_queries_get_answered(self, all_runtimes, catalog):
        runtime = all_runtimes["hdr"]
        outcomes = judge_queries(runtime.query_records(), runtime.history, catalog)
        assert outcomes.issued > 20
        assert outcomes.answer_ratio > 0.5

    def test_better_refresh_means_fresher_answers(self, all_runtimes, catalog):
        def fresh_ratio(name):
            runtime = all_runtimes[name]
            return judge_queries(
                runtime.query_records(), runtime.history, catalog
            ).fresh_ratio

        assert fresh_ratio("flooding") > fresh_ratio("source")
        assert fresh_ratio("hdr") > fresh_ratio("none") if not np.isnan(
            fresh_ratio("none")
        ) else True


class TestRefreshOutcomes:
    def test_on_time_ordering(self, all_runtimes, catalog):
        def on_time(name):
            runtime = all_runtimes[name]
            return refresh_outcomes(
                runtime.update_log, runtime.history, catalog,
                runtime.caching_nodes, horizon=2 * DAY,
                messages=runtime.refresh_overhead(),
            ).on_time_ratio

        assert on_time("flooding") >= on_time("hdr") - 0.02
        assert on_time("hdr") > on_time("source")


class TestDeterminism:
    def test_same_seed_same_results(self, trace, catalog):
        a = run_scheme(trace, catalog, "hdr", seed=3)
        b = run_scheme(trace, catalog, "hdr", seed=3)
        assert a.refresh_overhead() == b.refresh_overhead()
        assert len(a.update_log) == len(b.update_log)
        for ua, ub in zip(a.update_log, b.update_log):
            assert (ua.item_id, ua.node, ua.version, ua.updated_at) == (
                ub.item_id, ub.node, ub.version, ub.updated_at
            )
        series_a = a.stats.series("probe.freshness").values
        series_b = b.stats.series("probe.freshness").values
        assert series_a == series_b


class TestBandwidthLimitedIntegration:
    def test_tight_links_reduce_freshness(self, trace, catalog):
        from repro.sim.network import BandwidthLimitedLink

        unlimited = run_scheme(trace, catalog, "flooding")
        tight = build_simulation(
            trace, catalog, scheme="flooding", num_caching_nodes=5, seed=1,
            link_model=BandwidthLimitedLink(bandwidth_bps=8.0),  # ~1 B/s
        )
        tight.install_freshness_probe(interval=1800.0, until=2 * DAY)
        tight.run(until=2 * DAY)
        assert freshness_of(tight) < freshness_of(unlimited)
        assert tight.stats.counter_value("net.transfer_rejected_bandwidth") > 0
