"""Tests for crash-safe checkpoints, supervised restart, stream faults.

The anchor is kill/resume equivalence: a serving process SIGKILLed
mid-replay and resumed from its latest checkpoint must finish with
metrics ``same_as``-identical to the uninterrupted batch run -- the
streaming replay-equivalence guarantee extended across a crash.  The
rest covers the journal wire format (CRC, commit markers, torn-tail
recovery), quarantine of malformed lines, build-spec round-trips,
digest verification, supervisor backoff + circuit breaker, degraded
``/healthz`` states, source cursors, and deterministic stream-fault
injection.
"""

import asyncio
import json
import math
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.experiments.config import DAY, Settings
from repro.faults import FaultPlan, plan_from_dict
from repro.faults.stream import StreamFaultInjector
from repro.obs.bus import EventBus
from repro.service import (
    BuildSpec,
    CheckpointError,
    ContactEvent,
    CrashLoop,
    DurableSource,
    FileTailSource,
    HttpApi,
    Journal,
    ReplaySource,
    RestartPolicy,
    SocketSource,
    Supervisor,
    replay_scores,
    restore_service,
    resume_replay_scores,
    runtime_digest,
    scan_journal,
    scores_match,
    serve_and_score,
    service_from_settings,
)
from repro.service.durability import (
    JOURNAL_FILE,
    MANIFEST_FILE,
    QUARANTINE_FILE,
    SPEC_FILE,
    Quarantine,
    load_manifest,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _settings(days: float = 1.0, seed: int = 1) -> Settings:
    return Settings.fast().with_(duration=days * DAY, seeds=(seed,))


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _events(n: int = 6) -> list[ContactEvent]:
    return [ContactEvent(a=0, b=1, start=10.0 * k, end=10.0 * k + 5.0)
            for k in range(n)]


class TestJournal:
    def test_append_scan_roundtrip(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        journal = Journal.open(path)
        events = _events(6)
        assert journal.append_batch(events[:4], cursor=4) == 4
        assert journal.append_batch(events[4:], cursor=6) == 6
        journal.close()
        scan = scan_journal(path)
        assert list(scan.events) == events
        assert scan.cursor == 6
        assert scan.records == 6
        assert scan.commits == 2
        assert scan.valid_bytes == path.stat().st_size

    def test_empty_batch_still_commits_cursor(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        journal = Journal.open(path)
        journal.append_batch([], cursor=17)
        journal.close()
        scan = scan_journal(path)
        assert scan.records == 0
        assert scan.cursor == 17

    def test_torn_tail_truncated_to_last_commit(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        journal = Journal.open(path)
        events = _events(6)
        journal.append_batch(events[:3], cursor=3)
        journal.append_batch(events[3:], cursor=6)
        journal.close()
        # tear the file inside the second batch: its commit is gone, so
        # only the first batch survives
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 30])
        scan = scan_journal(path)
        assert list(scan.events) == events[:3]
        assert scan.cursor == 3
        # re-opening truncates the torn region and appends cleanly
        journal = Journal.open(path)
        assert journal.records == 3
        journal.append_batch(events[3:], cursor=6)
        journal.close()
        again = scan_journal(path)
        assert list(again.events) == events
        assert again.cursor == 6

    def test_corrupt_crc_stops_scan(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        journal = Journal.open(path)
        events = _events(4)
        journal.append_batch(events[:2], cursor=2)
        journal.append_batch(events[2:], cursor=4)
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        # corrupt a value in the third record line (second batch): the
        # stored CRC no longer matches the payload
        lines[3] = lines[3].replace(b'"start": 20.0', b'"start": 21.0')
        if lines[3] == path.read_bytes().splitlines(keepends=True)[3]:
            lines[3] = lines[3].replace(b"20.0", b"21.0", 1)
        path.write_bytes(b"".join(lines))
        scan = scan_journal(path)
        assert list(scan.events) == events[:2]
        assert scan.cursor == 2

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_journal(tmp_path / "nope.jsonl")
        assert scan.records == 0 and scan.cursor is None

    @given(
        n=st.integers(min_value=0, max_value=30),
        batch=st.integers(min_value=1, max_value=7),
        cut=st.integers(min_value=0, max_value=2000),
    )
    @hyp_settings(max_examples=40, deadline=None)
    def test_torn_journal_never_yields_uncommitted(self, tmp_path_factory,
                                                   n, batch, cut):
        """Property: any byte-truncation of a journal recovers a prefix
        of whole committed batches -- never a partial batch."""
        tmp = tmp_path_factory.mktemp("journal")
        path = tmp / JOURNAL_FILE
        journal = Journal.open(path)
        events = _events(n)
        boundaries = [0]
        for start in range(0, n, batch):
            journal.append_batch(events[start:start + batch],
                                 cursor=min(start + batch, n))
            boundaries.append(min(start + batch, n))
        journal.close()
        data = path.read_bytes()
        path.write_bytes(data[: min(cut, len(data))])
        scan = scan_journal(path)
        assert scan.records in boundaries
        assert list(scan.events) == events[: scan.records]
        if scan.records:
            assert scan.cursor == scan.records


class TestQuarantineAndDurableSource:
    def test_malformed_lines_quarantined_not_dropped_silently(
        self, tmp_path
    ):
        async def scenario():
            journal = Journal.open(tmp_path / JOURNAL_FILE)
            quarantine = Quarantine(tmp_path / QUARANTINE_FILE)
            events = _events(3)

            async def raw():
                yield [events[0].to_line(), "garbage", events[1].to_line()]
                yield ['{"a": 1}', events[2].to_line()]

            source = DurableSource(raw(), journal, quarantine)
            seen = []
            async for committed in source:
                seen.extend(committed)
                assert committed.commit == len(seen)
            journal.close()
            quarantine.close()
            return seen, quarantine.count

        seen, rejected = asyncio.run(scenario())
        assert seen == _events(3)
        assert rejected == 2
        sidecar = [
            json.loads(line)
            for line in (tmp_path / QUARANTINE_FILE).read_text().splitlines()
        ]
        assert len(sidecar) == 2
        assert sidecar[0]["line"] == "garbage"
        assert "reason" in sidecar[0]
        # the journal holds only the valid events
        assert list(scan_journal(tmp_path / JOURNAL_FILE).events) == seen

    def test_rejected_counter_exposed_in_metrics(self, tmp_path):
        async def scenario():
            service, trace = service_from_settings(_settings(), seed=1)
            spec = BuildSpec.from_settings(_settings(), seed=1, scheme="hdr")
            service.enable_checkpointing(tmp_path / "ck", spec=spec)
            a, b = trace.node_ids[0], trace.node_ids[1]

            async def raw():
                yield [json.dumps({"a": a, "b": b, "start": 50.0,
                                   "end": 90.0}),
                       "not json"]

            await service.serve(raw())
            await service.stop()
            service.checkpointer.close()
            return service.stats.counters(), service.status()

        counters, status = asyncio.run(scenario())
        assert counters["service.events.rejected"] == 1
        assert status["contacts"]["ingested"] == 1


class TestBuildSpec:
    def test_roundtrip_and_fingerprint(self, tmp_path):
        spec = BuildSpec.from_settings(_settings(), seed=3, scheme="hdr",
                                       contact_queue=128)
        spec.save(tmp_path)
        loaded = BuildSpec.load(tmp_path)
        assert loaded == spec
        assert loaded.fingerprint() == spec.fingerprint()
        assert loaded.settings_obj() == _settings()
        # saving the identical spec again is a no-op...
        spec.save(tmp_path)
        # ...but a different one is refused (mixed checkpoints)
        other = BuildSpec.from_settings(_settings(), seed=4, scheme="hdr")
        with pytest.raises(CheckpointError):
            other.save(tmp_path)

    def test_rejects_unserialisable(self):
        from repro.core.scheme import SchemeConfig

        with pytest.raises(CheckpointError):
            BuildSpec.from_settings(
                _settings(), seed=1,
                scheme=SchemeConfig(name="hdr", structure="tree"),
            )
        with pytest.raises(CheckpointError):
            BuildSpec.from_settings(_settings(), seed=1, scheme="hdr",
                                    weird=object())

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            BuildSpec.load(tmp_path)


class TestCheckpointRestore:
    """The heart of the PR: restore == never-crashed, digest-verified."""

    def test_durable_replay_matches_batch(self, tmp_path):
        from repro.experiments.runner import make_trace, run_once

        settings = _settings()
        trace = make_trace(settings, 1)
        batch = run_once(trace, "hdr", settings, seed=1)
        score = replay_scores(settings, seed=1, scheme="hdr",
                              checkpoint=tmp_path / "ck",
                              checkpoint_interval_s=0.0)
        assert scores_match(score, batch)
        manifest = load_manifest(tmp_path / "ck")
        assert manifest["records"] == manifest["journal"]["records"]
        assert manifest["digest"]["watermark"] > 0

    @pytest.mark.parametrize("fraction", [0.0, 0.3, 1.0])
    def test_partial_serve_then_restore_matches_batch(self, tmp_path,
                                                      fraction):
        """Serve a prefix durably, 'crash', restore, finish: identical."""
        from repro.experiments.runner import make_trace, run_once

        settings = _settings()
        trace = make_trace(settings, 1)
        batch = run_once(trace, "hdr", settings, seed=1)
        events = ContactEvent.from_contacts(trace)
        split = int(len(events) * fraction)
        directory = tmp_path / "ck"

        async def partial():
            service, _ = service_from_settings(settings, seed=1)
            spec = BuildSpec.from_settings(settings, seed=1, scheme="hdr")
            service.enable_checkpointing(directory, spec=spec,
                                         interval_s=0.0)
            await service.serve(ReplaySource(events[:split]))
            await service.stop()
            # crash: drop the service without finish() or close()

        asyncio.run(partial())
        score = resume_replay_scores(directory)
        assert scores_match(score, batch)

    def test_restore_verifies_manifest_digest(self, tmp_path):
        settings = _settings()
        events_split = 64
        directory = tmp_path / "ck"

        async def partial():
            service, trace = service_from_settings(settings, seed=1)
            spec = BuildSpec.from_settings(settings, seed=1, scheme="hdr")
            service.enable_checkpointing(directory, spec=spec,
                                         interval_s=0.0)
            events = ContactEvent.from_contacts(trace)
            await service.serve(ReplaySource(events[:events_split]))
            await service.stop()

        asyncio.run(partial())
        restored = restore_service(directory)
        assert restored.verified
        assert restored.records == restored.manifest["records"]
        assert restored.cursor == events_split
        assert (runtime_digest(restored.service)
                == restored.manifest["digest"])
        restored.service.checkpointer.close()
        # a tampered journal record must fail the digest check
        journal_path = directory / JOURNAL_FILE
        lines = journal_path.read_bytes().splitlines(keepends=True)
        first = json.loads(lines[0])
        first["a"] = 10 ** 6  # unknown node: the replayed ingest sheds it
        payload = {k: v for k, v in first.items() if k != "crc"}
        import zlib

        payload["crc"] = zlib.crc32(json.dumps(
            payload, sort_keys=True, separators=(",", ":")).encode())
        lines[0] = (json.dumps(payload, sort_keys=True,
                               separators=(",", ":")) + "\n").encode()
        journal_path.write_bytes(b"".join(lines))
        with pytest.raises(CheckpointError, match="digest"):
            restore_service(directory)

    def test_restore_without_manifest_still_replays(self, tmp_path):
        from repro.experiments.runner import make_trace, run_once

        settings = _settings()
        trace = make_trace(settings, 1)
        batch = run_once(trace, "hdr", settings, seed=1)
        events = ContactEvent.from_contacts(trace)
        directory = tmp_path / "ck"

        async def partial():
            service, _ = service_from_settings(settings, seed=1)
            spec = BuildSpec.from_settings(settings, seed=1, scheme="hdr")
            service.enable_checkpointing(directory, spec=spec,
                                         interval_s=0.0)
            await service.serve(ReplaySource(events[: len(events) // 2]))
            await service.stop()

        asyncio.run(partial())
        (directory / MANIFEST_FILE).unlink()
        restored = restore_service(directory)
        assert not restored.verified  # nothing to verify against
        restored.service.checkpointer.close()
        score = resume_replay_scores(directory)
        assert scores_match(score, batch)

    def test_fresh_enable_on_populated_dir_refused(self, tmp_path):
        directory = tmp_path / "ck"
        journal = Journal.open(directory / JOURNAL_FILE)
        journal.append_batch(_events(2), cursor=2)
        journal.close()
        service, _ = service_from_settings(_settings(), seed=1)
        spec = BuildSpec.from_settings(_settings(), seed=1, scheme="hdr")
        with pytest.raises(CheckpointError, match="resume"):
            service.enable_checkpointing(directory, spec=spec)

    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    @hyp_settings(max_examples=6, deadline=None)
    def test_checkpoint_restore_roundtrips_runtime_state(
        self, tmp_path_factory, fraction
    ):
        """Property: for any stream split point, the restored runtime's
        digest equals the original's at the same prefix."""
        settings = _settings(days=0.5)
        directory = tmp_path_factory.mktemp("ck") / "d"

        async def partial():
            service, trace = service_from_settings(settings, seed=1)
            spec = BuildSpec.from_settings(settings, seed=1, scheme="hdr")
            service.enable_checkpointing(directory, spec=spec,
                                         interval_s=0.0)
            events = ContactEvent.from_contacts(trace)
            split = int(len(events) * fraction)
            await service.serve(ReplaySource(events[:split]))
            await service.stop()
            return runtime_digest(service)

        original = asyncio.run(partial())
        restored = restore_service(directory)
        assert runtime_digest(restored.service) == original
        assert restored.verified
        restored.service.checkpointer.close()


class TestKillResumeSubprocess:
    def test_sigkill_mid_replay_then_resume_is_identical(self, tmp_path):
        """A real SIGKILL mid-replay; resume finishes byte-identical."""
        from repro.experiments.runner import make_trace, run_once

        settings = _settings()
        trace = make_trace(settings, 1)
        batch = run_once(trace, "hdr", settings, seed=1)
        ckpt = tmp_path / "ck"
        serve_cmd = [
            sys.executable, "-m", "repro.cli", "serve", "--days", "1",
            "--seed", "1", "--profile", "small", "--http", "off",
            "--checkpoint", str(ckpt), "--checkpoint-interval", "0.1",
        ]
        # pace the replay (~9s of wall for the day) so the kill lands
        # mid-stream, then SIGKILL as soon as a manifest exists
        proc = subprocess.Popen(
            serve_cmd + ["--dilation", "10000"],
            env=_subprocess_env(), cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        manifest = ckpt / MANIFEST_FILE
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if manifest.exists():
                    break
                if proc.poll() is not None:
                    pytest.fail(
                        "serve exited before a manifest appeared: "
                        + (proc.stderr.read() or "")[-500:]
                    )
                time.sleep(0.05)
            else:
                pytest.fail("no manifest within 60s")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
        assert proc.returncode == -signal.SIGKILL
        scan = scan_journal(ckpt / JOURNAL_FILE)
        assert scan.records < len(trace), "kill landed after the replay"

        score_path = tmp_path / "score.json"
        resume = subprocess.run(
            serve_cmd + ["--resume", "--score-json", str(score_path)],
            capture_output=True, text=True, env=_subprocess_env(),
            cwd=REPO_ROOT, timeout=300,
        )
        assert resume.returncode == 0, resume.stderr[-500:]
        assert "resumed from" in resume.stdout
        score = json.loads(score_path.read_text())
        assert scores_match(score, batch), (
            f"kill/resume diverged: {score} vs batch"
        )


class _FakeChild:
    def __init__(self, code: int) -> None:
        self.code = code

    def wait(self) -> int:
        return self.code

    def poll(self):
        return self.code

    def send_signal(self, signum) -> None:  # pragma: no cover
        pass


class TestSupervisor:
    @staticmethod
    def _supervisor(codes, tmp_path, **policy):
        queue = list(codes)
        sleeps = []
        supervisor = Supervisor(
            ["true"],
            policy=RestartPolicy(min_healthy_s=1e9, **policy),
            log_path=tmp_path / "restarts.jsonl",
            spawn=lambda cmd: _FakeChild(queue.pop(0)),
            sleep=sleeps.append,
            echo=lambda line: None,
        )
        return supervisor, sleeps

    def test_restarts_until_clean_exit(self, tmp_path):
        supervisor, sleeps = self._supervisor([1, 1, 0], tmp_path)
        assert supervisor.run(install_signals=False) == 0
        assert supervisor.restarts == 2
        assert sleeps == [0.5, 1.0]  # bounded exponential backoff
        log = [json.loads(line) for line in
               (tmp_path / "restarts.jsonl").read_text().splitlines()]
        assert [entry["exit_code"] for entry in log] == [1, 1]
        assert [entry["attempt"] for entry in log] == [1, 2]
        assert log[0]["kind"] == "service.restart"

    def test_crash_loop_circuit_breaker(self, tmp_path):
        supervisor, _ = self._supervisor(
            [9] * 4, tmp_path, max_restarts=2
        )
        with pytest.raises(CrashLoop):
            supervisor.run(install_signals=False)
        assert supervisor.restarts == 2

    def test_backoff_is_bounded(self):
        policy = RestartPolicy(backoff_base_s=1.0, backoff_factor=3.0,
                               backoff_cap_s=10.0)
        assert [policy.backoff(n) for n in (1, 2, 3, 4)] == [
            1.0, 3.0, 9.0, 10.0
        ]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartPolicy(backoff_factor=0.5)

    def test_supervised_cli_restarts_crashed_child(self, tmp_path):
        """Smoke: child self-crashes once, supervisor resumes it."""
        ckpt = tmp_path / "ck"
        env = _subprocess_env()
        env["REPRO_SERVE_CRASH_AT"] = "256"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve", "--days", "1",
             "--seed", "1", "--profile", "small", "--http", "off",
             "--checkpoint", str(ckpt), "--checkpoint-interval", "0",
             "--supervised", "--min-healthy", "0.01"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-500:]
        assert "restart" in proc.stdout
        log_lines = (ckpt / "restarts.jsonl").read_text().splitlines()
        assert len(log_lines) == 1
        assert json.loads(log_lines[0])["exit_code"] == 17


class TestHealthStates:
    @staticmethod
    async def _get(api, path):
        reader, writer = await asyncio.open_connection(api.host, api.port)
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            .encode()
        )
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        body = (await reader.read()).split(b"\r\n\r\n", 1)[1]
        writer.close()
        return status, json.loads(body)

    def test_degraded_states_and_http_codes(self, tmp_path):
        async def scenario():
            service, _ = service_from_settings(
                _settings(), seed=1, query_queue=1
            )
            await service.start()
            api = HttpApi(service)
            await api.start()
            out = {}
            try:
                out["ok"] = await self._get(api, "/healthz")

                service.state = "resuming"
                out["resuming"] = await self._get(api, "/healthz")
                service.state = "ok"

                # overflow the 1-slot queue -> shedding (429)
                service.submit_query(0, wait=False)
                service.submit_query(0, wait=False)
                out["shedding"] = await self._get(api, "/healthz")
                service._last_shed_wall -= service.SHED_WINDOW_S + 1.0

                spec = BuildSpec.from_settings(_settings(), seed=1,
                                               scheme="hdr")
                checkpointer = service.enable_checkpointing(
                    tmp_path / "ck", spec=spec, interval_s=1e9
                )
                checkpointer.stale_after_s = 0.0
                checkpointer.note_commit(5)
                await asyncio.sleep(0.01)
                out["stale"] = await self._get(api, "/healthz")
                checkpointer.close()
            finally:
                await api.stop()
                await service.stop()
            return out

        out = asyncio.run(scenario())
        assert out["ok"][0] == 200 and out["ok"][1]["state"] == "ok"
        assert out["resuming"][0] == 503
        assert out["resuming"][1]["state"] == "resuming"
        assert out["shedding"][0] == 429
        assert out["shedding"][1]["state"] == "shedding"
        assert out["stale"] == (200, {
            "ok": False, "state": "checkpoint_stale", "degraded": True,
        })


class TestSourceCursors:
    def test_replay_cursor_and_resume(self):
        events = _events(10)

        async def consume(source):
            out = []
            async for batch in source:
                out.extend(batch)
            return out

        source = ReplaySource(events, batch_size=4)
        assert source.cursor() == 0
        assert asyncio.run(consume(source)) == events
        assert source.cursor() == 10
        resumed = ReplaySource(events, start_at=6)
        assert asyncio.run(consume(resumed)) == events[6:]
        assert resumed.cursor() == 10
        with pytest.raises(ValueError):
            ReplaySource(events, start_at=11)

    def test_file_tail_byte_cursor_resumes_exactly(self, tmp_path):
        path = tmp_path / "contacts.jsonl"
        events = _events(6)
        text = "".join(e.to_line() + "\n" for e in events)
        path.write_text(text)

        async def consume(source):
            out = []
            async for batch in source:
                out.extend(batch)
            return out

        first = FileTailSource(path, follow=False, batch_size=2)
        lines = asyncio.run(consume(first))
        assert [ContactEvent.from_line(l) for l in lines] == events
        assert first.cursor() == len(text.encode())
        # resume from a mid-file cursor: exactly the remainder
        offset = len((events[0].to_line() + "\n").encode())
        rest = FileTailSource(path, follow=False, start_offset=offset)
        lines = asyncio.run(consume(rest))
        assert [ContactEvent.from_line(l) for l in lines] == events[1:]

    def test_socket_reconnect_counted_and_recorded(self):
        async def scenario():
            from repro.sim.stats import StatsRegistry

            registry = StatsRegistry()
            bus = EventBus()
            source = SocketSource(registry=registry, bus=bus,
                                  batch_size=1)
            await source.start()
            event = ContactEvent(a=1, b=2, start=3.0, end=4.0)
            iterator = source.__aiter__()
            for _ in range(2):  # connect, send, disconnect -- twice
                reader, writer = await asyncio.open_connection(
                    source.host, source.port
                )
                writer.write((event.to_line() + "\n").encode())
                await writer.drain()
                await asyncio.wait_for(iterator.__anext__(), timeout=5)
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.1)
            source.stop.set()
            counters = registry.counters()
            kinds = [record.kind for record in bus.records]
            return counters, kinds, source.disconnects

        counters, kinds, disconnects = asyncio.run(scenario())
        assert counters["service.source.connects"] == 2
        assert counters["service.source.reconnects"] == 1
        assert disconnects >= 1
        assert "source.reconnect" in kinds

    def test_socket_idle_timeout_evicts_peer(self):
        async def scenario():
            source = SocketSource(idle_timeout=0.1)
            await source.start()
            reader, writer = await asyncio.open_connection(
                source.host, source.port
            )
            await asyncio.sleep(0.4)  # stay silent past the timeout
            source.stop.set()
            writer.close()
            disconnects = source.disconnects
            await source.close()
            return disconnects

        assert asyncio.run(scenario()) == 1


class TestStreamFaults:
    PLAN = FaultPlan(
        stream_malformed_rate=0.1,
        stream_duplicate_rate=0.1,
        stream_reorder_rate=0.1,
        stream_skew_rate=0.1,
        stream_skew_max_s=30.0,
    )

    @staticmethod
    async def _drain(injector):
        out = []
        async for batch in injector:
            out.extend(batch)
        return out

    def test_toml_and_flags(self, tmp_path):
        plan_path = tmp_path / "plan.toml"
        plan_path.write_text(
            "[stream]\nmalformed_rate = 0.2\n"
            "disconnect_rate_per_day = 2.0\nmean_disconnect_s = 300.0\n"
        )
        from repro.faults import load_plan

        plan = load_plan(plan_path)
        assert plan.stream_malformed_rate == 0.2
        assert plan.has_stream_faults()
        assert plan.is_null(), "stream-only plans must not touch batch runs"
        assert not FaultPlan().has_stream_faults()
        with pytest.raises(ValueError):
            FaultPlan(stream_malformed_rate=1.5)
        with pytest.raises(ValueError):
            plan_from_dict({"stream": {"bogus": 1}})

    def test_deterministic_given_seed(self):
        events = _events(200)
        runs = []
        for _ in range(2):
            injector = StreamFaultInjector(
                ReplaySource(events), self.PLAN, seed=7
            )
            runs.append((asyncio.run(self._drain(injector)),
                         dict(injector.counts)))
        assert runs[0] == runs[1]
        other = StreamFaultInjector(ReplaySource(events), self.PLAN, seed=8)
        asyncio.run(self._drain(other))
        assert other.counts != runs[0][1]

    def test_actions_applied_and_counted(self):
        events = _events(400)
        bus = EventBus()
        injector = StreamFaultInjector(ReplaySource(events), self.PLAN,
                                       seed=1, bus=bus)
        items = asyncio.run(self._drain(injector))
        counts = injector.counts
        assert counts["malformed"] > 0
        assert counts["duplicate"] > 0
        assert counts["reorder"] > 0
        assert counts["skew"] > 0
        garbage = [i for i in items if isinstance(i, str)
                   and i.startswith("\x00garbage")]
        assert len(garbage) == counts["malformed"]
        assert len(items) == 400 + counts["duplicate"]
        assert any(r.kind == "fault.stream" for r in bus.records)

    def test_disconnect_window_delays_events(self):
        events = _events(500)
        plan = FaultPlan(stream_disconnect_rate_per_day=400.0,
                         stream_mean_disconnect_s=100.0)
        injector = StreamFaultInjector(ReplaySource(events), plan, seed=2)
        items = asyncio.run(self._drain(injector))
        assert sorted(items, key=lambda e: e.start) == events
        assert injector.counts["disconnect"] > 0
        starts = [e.start for e in items]
        assert starts != sorted(starts), "windows must reorder arrivals"

    def test_wrapping_faultless_plan_rejected(self):
        with pytest.raises(ValueError):
            StreamFaultInjector(ReplaySource([]), FaultPlan(), seed=1)

    def test_kill_resume_equivalence_holds_under_faults(self, tmp_path):
        """The journal records the post-fault stream, so a faulted run
        restored mid-stream finishes identical to the same faulted run
        left uninterrupted."""
        settings = _settings(days=0.5)
        plan = self.PLAN
        directories = [tmp_path / "a", tmp_path / "b"]
        scores = []
        for index, directory in enumerate(directories):
            service, trace = service_from_settings(settings, seed=1)
            spec = BuildSpec.from_settings(settings, seed=1, scheme="hdr")
            service.enable_checkpointing(directory, spec=spec,
                                         interval_s=0.0)
            events = ContactEvent.from_contacts(trace)
            injector = StreamFaultInjector(ReplaySource(events), plan,
                                           seed=5)
            if index == 0:
                scores.append(asyncio.run(serve_and_score(service,
                                                          injector)))
            else:
                async def partial():
                    # same faulted stream, but 'crash' after serving --
                    # the journal is what carries the faulted prefix
                    await service.serve(injector)
                    await service.stop()

                asyncio.run(partial())
                restored = restore_service(directory)
                restored.service.checkpointer.close()
                scores.append(resume_replay_scores(directory))
        assert scores[0] == scores[1]
