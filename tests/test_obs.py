"""The observability subsystem: bus, records, exporters, report.

Covers the two guarantees the subsystem makes:

- **zero-cost when disabled** -- a simulation built without a bus wires
  no listeners and leaves every ``trace`` attribute ``None``, so the
  only per-emission cost is the guard itself;
- **passive when enabled** -- a traced run returns bit-identical
  :class:`RunMetrics` (``same_as``) to an untraced run, and its trace
  round-trips through the JSONL exporter, the manifest merge, the
  ``repro report`` renderer, and the Chrome trace converter.
"""

import json
import math

import numpy as np
import pytest

from repro import DataCatalog, build_simulation, get_profile
from repro.experiments.config import Settings
from repro.experiments.runner import run_once, trace_output
from repro.obs.bus import EventBus, tee_online_listener
from repro.obs.export import (
    chrome_trace,
    load_trace,
    read_jsonl,
    read_manifest,
    summarize_trace,
    write_jsonl,
)
from repro.obs.records import (
    RECORD_TYPES,
    CachePut,
    ContactOpen,
    MessageTx,
    NodeChurn,
    QueryComplete,
    TaskDrop,
    record_from_dict,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.report import format_trace_report
from repro.sim import messages as messages_mod

DAY = 86400.0

#: one seed, one day of the small profile -- a couple of seconds per run
FAST = Settings.fast().with_(duration=1 * DAY, seeds=(1,))


def _build(bus=None):
    rng = np.random.default_rng(3)
    trace = get_profile("small").generate(rng, duration=1 * DAY)
    catalog = DataCatalog.uniform(
        num_items=3, sources=[trace.node_ids[0]], refresh_interval=4 * 3600.0
    )
    return build_simulation(
        trace, catalog, scheme="hdr", num_caching_nodes=4, seed=1,
        with_queries=True, bus=bus,
    )


# ---------------------------------------------------------------------------
# disabled fast path
# ---------------------------------------------------------------------------


def test_disabled_bus_wires_nothing():
    runtime = _build(bus=None)
    assert runtime.trace is None
    assert runtime.network.trace is None
    assert runtime.sim.trace is None
    for store in runtime.stores.values():
        assert store.trace is None
    assert messages_mod._TRACE is None
    # the only online listeners are the simulation's own (node churn
    # bookkeeping), not an observability tee
    baseline = len(runtime.network._online_listeners)
    traced = _build(bus=EventBus())
    assert len(traced.network._online_listeners) == baseline + 1


def test_disabled_run_records_nothing():
    runtime = _build(bus=None)
    runtime.run(until=6 * 3600.0)
    assert runtime.trace is None  # still no bus after a run


# ---------------------------------------------------------------------------
# bus mechanics
# ---------------------------------------------------------------------------


def test_bus_buffers_streams_and_counts():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    bus.emit(NodeChurn(1.0, 3, True))
    bus.emit(NodeChurn(2.0, 3, False))
    bus.emit(ContactOpen(3.0, 1, 2, 60.0))
    assert len(bus) == 3
    assert [r.kind for r in seen] == ["node.churn", "node.churn", "contact.open"]
    assert bus.counts() == {"contact.open": 1, "node.churn": 2}
    assert [r.time for r in bus.of_kind("node.churn")] == [1.0, 2.0]


def test_bus_streaming_only_mode():
    bus = EventBus(keep_records=False)
    seen = []
    bus.subscribe(seen.append)
    bus.emit(NodeChurn(1.0, 0, True))
    assert len(bus) == 0 and len(seen) == 1


def test_tee_online_listener_forwards_churn():
    bus = EventBus()
    listener = tee_online_listener(bus)
    listener(7, True, 42.0)
    (record,) = bus.records
    assert (record.kind, record.node, record.online, record.time) == (
        "node.churn", 7, True, 42.0)


# ---------------------------------------------------------------------------
# records and JSONL round trip
# ---------------------------------------------------------------------------


def test_every_record_kind_round_trips(tmp_path):
    samples = [
        ContactOpen(10.0, 1, 2, 300.0),
        NodeChurn(11.0, 4, False),
        MessageTx(12.0, "refresh", 1, 2, 1024, 17, 3, 2),
        TaskDrop(13.0, 5, 0, 2, 9, "expired"),
        CachePut(14.0, 6, 1, 4, True),
        QueryComplete(15.0, 2, 8, 1, 6, 120.0),
    ]
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(samples, path) == len(samples)
    loaded = read_jsonl(path)
    assert loaded == samples
    # as_dict/record_from_dict agree for every registered kind
    for record in samples:
        assert record_from_dict(record.as_dict()) == record
        assert record.kind in RECORD_TYPES


def test_record_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown trace record kind"):
        record_from_dict({"kind": "bogus.kind", "time": 0.0})


# ---------------------------------------------------------------------------
# traced run: identity, exporters, report
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced E4-style run (queries on) plus its untraced twin."""
    path = tmp_path_factory.mktemp("obs") / "run.jsonl"
    trace = get_profile(FAST.profile).generate(
        np.random.default_rng(1), duration=FAST.duration)
    untraced = run_once(trace, "hdr", FAST, seed=1, with_queries=True)
    traced = run_once(trace, "hdr", FAST, seed=1, with_queries=True,
                      trace_path=path)
    return untraced, traced, path


def test_traced_metrics_identical(traced_run):
    untraced, traced, _ = traced_run
    assert untraced.same_as(traced)


def test_trace_covers_the_stack(traced_run):
    _, _, path = traced_run
    records = load_trace(path)
    kinds = {r.kind for r in records}
    # engine + network + messages + refresh tasks + cache + queries all
    # show up in a real run (node.churn does not: the small profile has
    # no churn, and the tee listener has its own unit test)
    assert {"engine.run", "contact.open", "contact.close",
            "msg.create", "msg.tx", "msg.rx",
            "task.create", "task.drop", "cache.put",
            "query.issue", "query.complete"} <= kinds
    # msg volume is conserved: nothing received that was never sent
    counts = {k: sum(1 for r in records if r.kind == k) for k in kinds}
    assert counts["msg.rx"] <= counts["msg.tx"] <= counts["msg.create"]


def test_report_and_summary(traced_run):
    _, _, path = traced_run
    records = load_trace(path)
    summary = summarize_trace(records)
    assert summary["records"] == len(records)
    assert summary["queries"]["issued"] > 0
    assert summary["time_span"][0] <= summary["time_span"][1]
    text = format_trace_report(records, title="test run")
    assert "== test run ==" in text
    assert "record counts" in text
    assert "message flow" in text
    assert "query funnel" in text


def test_chrome_trace_is_valid(traced_run):
    _, _, path = traced_run
    records = load_trace(path)
    trace = chrome_trace(records)
    events = trace["traceEvents"]
    assert events
    json.dumps(trace)  # must be serialisable as-is
    for event in events:
        assert math.isfinite(event.get("ts", 0.0))
        assert event["ph"] in ("X", "i", "M")
    # contacts render as duration slices
    assert any(e["ph"] == "X" for e in events)


# ---------------------------------------------------------------------------
# trace_output sink: multi-run manifest
# ---------------------------------------------------------------------------


def test_trace_output_writes_manifest_for_multiple_runs(tmp_path):
    trace = get_profile(FAST.profile).generate(
        np.random.default_rng(1), duration=FAST.duration)
    out = tmp_path / "multi.jsonl"
    with trace_output(out) as sink:
        with pytest.raises(RuntimeError, match="not reentrant"):
            trace_output(out).__enter__()
        for scheme in ("hdr", "source"):
            run_once(trace, scheme, FAST, seed=1)
    manifest = tmp_path / "multi.manifest.json"
    assert sink.output == manifest and manifest.exists()
    entries = read_manifest(manifest)
    assert [e["scheme"] for e in entries] == ["hdr", "source"]
    assert all(e["records"] > 0 for e in entries)
    merged = load_trace(manifest)
    assert len(merged) == sum(e["records"] for e in entries)


def test_trace_output_renames_single_run(tmp_path):
    trace = get_profile(FAST.profile).generate(
        np.random.default_rng(1), duration=FAST.duration)
    out = tmp_path / "single.jsonl"
    with trace_output(out) as sink:
        run_once(trace, "source", FAST, seed=1)
    assert sink.output == out and out.exists()
    assert load_trace(out)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


def test_metrics_registry_snapshot():
    registry = MetricsRegistry()
    registry.counter("msgs").add(3)
    hist = registry.histogram("delay")
    for value in range(1, 101):
        hist.observe(float(value))
    snap = registry.snapshot(now=12.5)
    assert snap["time"] == 12.5
    assert snap["counters"]["msgs"] == 3
    delay = snap["histograms"]["delay"]
    assert delay["count"] == 100
    assert delay["p50"] == pytest.approx(50.5, abs=1.0)
    assert delay["p99"] == pytest.approx(99.0, abs=1.5)
    # same instrument back on repeated lookup
    assert registry.histogram("delay") is hist


def test_build_simulation_hands_out_metrics_registry():
    runtime = _build()
    assert isinstance(runtime.stats, MetricsRegistry)
