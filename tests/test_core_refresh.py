"""Protocol-level tests of the refresh handlers on hand-built traces."""

import numpy as np
import pytest

from repro.caching.items import DataCatalog, DataItem, VersionHistory
from repro.caching.store import CacheStore
from repro.contacts.rates import RateTable
from repro.core.hierarchy import RefreshTree
from repro.core.refresh import (
    FloodingRefreshHandler,
    HdrRefreshHandler,
    SourceHandler,
)
from repro.core.replication import RelayPlan
from repro.mobility.trace import Contact, ContactTrace
from repro.sim.stats import StatsRegistry
from tests.conftest import build_network


def make_item(**overrides):
    defaults = dict(
        item_id=0, source=0, refresh_interval=100.0, lifetime=1e6, size=100
    )
    defaults.update(overrides)
    return DataItem(**defaults)


class HdrTestbed:
    """Source 0 with a chain tree 0 -> 1 -> 2 over a repeating line trace."""

    def __init__(self, trace, item=None, tree_edges=((0, 1), (1, 2)),
                 caching=(1, 2), plans=None, rates=None, relay_budget=None):
        self.item = item or make_item()
        self.catalog = DataCatalog([self.item])
        self.history = VersionHistory()
        self.stats = StatsRegistry()
        self.update_log = []
        tree = RefreshTree(root=0)
        for parent, child in tree_edges:
            tree.attach(child, parent)
        self.tree = tree
        self.net = build_network(trace, stats=self.stats)
        self.handlers = {}
        for nid, node in self.net.nodes.items():
            handler = HdrRefreshHandler(
                catalog=self.catalog,
                trees={0: tree},
                plans=plans or {},
                update_log=self.update_log,
                stats=self.stats,
                store=CacheStore() if nid in caching else None,
                rates=rates,
                relay_budget=relay_budget,
            )
            node.add_handler(handler)
            self.handlers[nid] = handler
        self.source = SourceHandler(
            items=[self.item], history=self.history, stats=self.stats
        )
        self.net.nodes[0].add_handler(self.source)
        self.source.on_new_version(self.handlers[0].source_published)


class TestHdrCascade:
    def test_version_cascades_down_tree(self, line_trace):
        bed = HdrTestbed(line_trace)
        bed.net.run(until=100.0)  # version 1 published at t=0
        # v1 reaches node 1 at the 0-1 contact (t=10), node 2 at t=30
        assert bed.handlers[1].store.peek(0).version == 1
        assert bed.handlers[2].store.peek(0).version == 1
        vias = [u.via for u in bed.update_log]
        assert vias == ["direct", "direct"]

    def test_new_versions_keep_flowing(self, line_trace):
        bed = HdrTestbed(line_trace)
        bed.net.run(until=1000.0)
        # versions published every 100 s; each sweep carries the newest
        assert bed.handlers[2].store.peek(0).version >= 8

    def test_child_not_in_contact_stays_stale(self):
        trace = ContactTrace(
            [Contact.make(0, 1, 10.0, 20.0)], node_ids=[0, 1, 2]
        )
        bed = HdrTestbed(trace)
        bed.net.run(until=100.0)
        assert bed.handlers[1].store.peek(0).version == 1
        assert bed.handlers[2].store.peek(0) is None

    def test_refresh_delay_recorded(self, line_trace):
        bed = HdrTestbed(line_trace)
        bed.net.run(until=60.0)
        delays = [u.delay for u in bed.update_log]
        assert delays == [pytest.approx(10.0), pytest.approx(30.0)]

    def test_suppression_when_target_already_fresh(self, line_trace):
        bed = HdrTestbed(line_trace)
        bed.handlers[1].seed_entry(bed.item, version=1, version_time=0.0)
        bed.net.run(until=25.0)
        # node 1 already had v1: the 0-1 contact suppresses the send
        assert bed.stats.counter_value("refresh.suppressed") >= 1
        assert bed.stats.counter_value("net.transfers.refresh") == 0

    def test_expired_task_dropped(self):
        # item expires after 5 s; first 0-1 contact at t=10
        trace = ContactTrace([Contact.make(0, 1, 10.0, 20.0)], node_ids=[0, 1, 2])
        bed = HdrTestbed(trace, item=make_item(lifetime=5.0))
        bed.net.run(until=100.0)
        assert bed.handlers[1].store.peek(0) is None
        assert bed.stats.counter_value("refresh.tasks_expired") >= 1

    def test_stale_delivery_counted_not_applied(self, line_trace):
        bed = HdrTestbed(line_trace)
        bed.handlers[1].seed_entry(bed.item, version=5, version_time=0.0)
        bed.net.run(until=25.0)
        # v1 delivery is suppressed by the peek; make node 1 look stale
        # through the pending-task path instead: hand a direct message.
        assert bed.handlers[1].store.peek(0).version == 5


class TestRelayPath:
    def relay_plan(self, relays):
        return {
            (0, 0, 2): RelayPlan(
                parent=0, child=2, window=50.0, target=0.9,
                direct_probability=0.0, relays=list(relays),
                relay_probabilities=[0.5] * len(relays),
                achieved=0.9, meets_target=True,
            )
        }

    def relay_trace(self):
        """0 never meets 2, but 1 shuttles between them."""
        contacts = []
        for start in range(0, 500, 100):
            contacts.append(Contact.make(0, 1, start + 10.0, start + 20.0))
            contacts.append(Contact.make(1, 2, start + 40.0, start + 50.0))
        return ContactTrace(contacts, node_ids=[0, 1, 2])

    def test_planned_relay_carries_refresh(self):
        bed = HdrTestbed(
            self.relay_trace(),
            tree_edges=((0, 2),),
            caching=(2,),
            plans=self.relay_plan([1]),
        )
        bed.net.run(until=99.0)
        assert bed.handlers[2].store.peek(0).version == 1
        assert bed.update_log[0].via == "relay"
        assert bed.stats.counter_value("refresh.relays_recruited") == 1

    def test_unqualified_peer_not_recruited(self):
        # empty relay list and no rates: node 1 never qualifies
        bed = HdrTestbed(
            self.relay_trace(),
            tree_edges=((0, 2),),
            caching=(2,),
            plans=self.relay_plan([]),
        )
        bed.net.run(until=500.0)
        assert bed.handlers[2].store.peek(0) is None

    def test_rate_gradient_recruits_encountered_peer(self):
        # peer 1 not pre-planned, but rates say 1 reaches 2 better than 0
        rates = RateTable({(0, 2): 0.0001, (1, 2): 1.0})
        plans = self.relay_plan([99])  # plan names an unknown relay
        bed = HdrTestbed(
            self.relay_trace(),
            tree_edges=((0, 2),),
            caching=(2,),
            plans=plans,
            rates=rates,
        )
        bed.net.run(until=99.0)
        assert bed.handlers[2].store.peek(0).version == 1

    def test_relay_budget_caps_recruitment(self):
        rates = RateTable({(0, 2): 0.0001, (1, 2): 1.0})
        bed = HdrTestbed(
            self.relay_trace(),
            tree_edges=((0, 2),),
            caching=(2,),
            plans=self.relay_plan([99]),
            rates=rates,
            relay_budget=0,
        )
        bed.net.run(until=500.0)
        assert bed.stats.counter_value("refresh.relays_recruited") == 0
        assert bed.stats.counter_value("refresh.budget_exhausted") >= 1

    def test_relay_does_not_rerelay(self):
        """A recruited relay must deliver itself, not recruit others."""
        contacts = []
        for start in range(0, 500, 100):
            contacts.append(Contact.make(0, 1, start + 10.0, start + 20.0))
            contacts.append(Contact.make(1, 3, start + 30.0, start + 40.0))
            contacts.append(Contact.make(3, 2, start + 50.0, start + 60.0))
        trace = ContactTrace(contacts, node_ids=[0, 1, 2, 3])
        rates = RateTable({(1, 2): 1.0, (3, 2): 5.0})
        bed = HdrTestbed(
            trace, tree_edges=((0, 2),), caching=(2,),
            plans=self.relay_plan([1]), rates=rates,
        )
        bed.net.run(until=500.0)
        # the source recruited node 1 (once per version), but node 1 must
        # never recruit node 3 onward -- so 3 holds no tasks and node 2
        # (reachable only through 3) never receives anything.
        assert bed.stats.counter_value("refresh.relays_recruited") > 0
        assert bed.handlers[3].tasks == {}
        assert bed.handlers[2].store.peek(0) is None


class TestSourceHandler:
    def test_periodic_publishing(self, line_trace):
        bed = HdrTestbed(line_trace)
        bed.net.run(until=350.0)
        assert bed.history.num_versions(0) == 4  # t=0,100,200,300
        assert bed.source.current_version(0)[0] == 4

    def test_poisson_mode_needs_rng(self):
        with pytest.raises(ValueError):
            SourceHandler(items=[], history=VersionHistory(), mode="poisson")

    def test_jitter_validated(self):
        with pytest.raises(ValueError):
            SourceHandler(items=[], history=VersionHistory(), jitter=1.0)

    def test_jittered_intervals_vary(self, line_trace):
        item = make_item()
        history = VersionHistory()
        net = build_network(line_trace)
        source = SourceHandler(
            items=[item], history=history, jitter=0.4,
            rng=np.random.default_rng(1),
        )
        net.nodes[0].add_handler(source)
        net.run(until=1000.0)
        times = [history.version_time(0, v) for v in range(1, history.num_versions(0) + 1)]
        gaps = {round(b - a, 3) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1  # not all identical

    def test_answer_provider(self, line_trace):
        bed = HdrTestbed(line_trace)
        bed.net.run(until=150.0)
        version, vtime = bed.source.answer_provider(0)
        assert version == 2
        assert vtime == 100.0

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            SourceHandler(items=[], history=VersionHistory(), mode="weird")


class TestFlooding:
    def wire_flooding(self, trace, caching=(3,)):
        item = make_item()
        catalog = DataCatalog([item])
        history = VersionHistory()
        stats = StatsRegistry()
        update_log = []
        net = build_network(trace, stats=stats)
        handlers = {}
        for nid, node in net.nodes.items():
            handler = FloodingRefreshHandler(
                catalog=catalog,
                update_log=update_log,
                stats=stats,
                store=CacheStore() if nid in caching else None,
            )
            node.add_handler(handler)
            handlers[nid] = handler
        source = SourceHandler(items=[item], history=history, stats=stats)
        net.nodes[0].add_handler(source)
        source.on_new_version(handlers[0].source_published)
        return net, handlers, stats

    def test_version_spreads_multihop(self, line_trace):
        net, handlers, stats = self.wire_flooding(line_trace)
        net.run(until=95.0)  # stop before v2 is published at t=100
        assert handlers[3].store.peek(0).version == 1
        # every node carries it
        assert all(h.known_version(0) == 1 for h in handlers.values())

    def test_no_redundant_pushes(self, line_trace):
        net, handlers, stats = self.wire_flooding(line_trace)
        net.run(until=95.0)
        # chain of 3 transfers carries v1 to everyone exactly once
        assert stats.counter_value("net.transfers.refresh_flood") == 3

    def test_non_caching_nodes_relay_without_store(self, line_trace):
        net, handlers, stats = self.wire_flooding(line_trace, caching=(3,))
        net.run(until=100.0)
        assert handlers[1].store is None
        assert handlers[1].known_version(0) == 1
