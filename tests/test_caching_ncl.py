"""Tests for caching-node (NCL) selection."""

import numpy as np
import pytest

from repro.caching.ncl import select_caching_nodes
from repro.contacts.rates import RateTable


def hub_rates() -> RateTable:
    """Node 0 is a clear hub; 1-4 form a weak ring."""
    table = RateTable()
    for leaf in (1, 2, 3, 4):
        table.set(0, leaf, 1.0)
    table.set(1, 2, 0.01)
    table.set(3, 4, 0.01)
    return table


class TestSelection:
    def test_contact_metric_picks_hub_first(self):
        picked = select_caching_nodes(hub_rates(), k=1, window=10.0)
        assert picked == [0]

    def test_k_nodes_returned(self):
        picked = select_caching_nodes(hub_rates(), k=3, window=10.0)
        assert len(picked) == 3
        assert len(set(picked)) == 3

    def test_exclude_removes_candidates(self):
        picked = select_caching_nodes(hub_rates(), k=1, window=10.0, exclude={0})
        assert picked != [0]

    def test_degree_metric(self):
        picked = select_caching_nodes(hub_rates(), k=1, metric="degree")
        assert picked == [0]

    def test_betweenness_metric(self):
        # path 1-0-2: node 0 bridges
        table = RateTable({(0, 1): 1.0, (0, 2): 1.0})
        picked = select_caching_nodes(table, k=1, metric="betweenness")
        assert picked == [0]

    def test_random_metric_needs_rng(self):
        with pytest.raises(ValueError):
            select_caching_nodes(hub_rates(), k=2, metric="random")

    def test_random_metric_selects_k(self):
        rng = np.random.default_rng(0)
        picked = select_caching_nodes(hub_rates(), k=3, metric="random", rng=rng)
        assert len(picked) == 3
        assert picked == sorted(picked)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            select_caching_nodes(hub_rates(), k=1, metric="nope")

    def test_too_few_candidates(self):
        with pytest.raises(ValueError):
            select_caching_nodes(hub_rates(), k=10)

    def test_k_validated(self):
        with pytest.raises(ValueError):
            select_caching_nodes(hub_rates(), k=0)
