"""Bench E16: regenerate the model-vs-simulation validation sweep."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e16_model_validation


def test_e16_model_validation(benchmark, fast_settings):
    result = run_experiment_once(
        benchmark, e16_model_validation.run, fast_settings
    )
    print("\n" + result.text)
    data = result.data

    # Every sweep point stays inside the KS-anchored agreement band.
    assert data["agreeing"] == data["points"]
    assert all(row["within"] == "yes" for row in data["rows"])
    assert data["band"] >= 0.05  # floor + scaled KS deviation

    # The direct-only column exercises the closed forms without the
    # pooled-recruitment relay model: its worst metric error should not
    # exceed the replicated columns' worst error by more than noise.
    worst = {}
    for row in data["rows"]:
        errs = [row[k] for k in row if k.endswith("|err|")]
        worst.setdefault(row["relays"], []).append(max(errs))
    direct = max(worst[0])
    replicated = max(e for k, errors in worst.items() if k > 0
                     for e in errors)
    assert direct <= replicated + 0.05

    # Predictions and measurements are probabilities.
    for row in data["rows"]:
        for key, value in row.items():
            if "(model)" in key or "(sim)" in key:
                assert 0.0 <= value <= 1.0
