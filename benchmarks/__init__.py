"""Benchmark package: one module per reproduced table/figure (E1-E14)
plus micro-benchmarks; run with ``pytest benchmarks/ --benchmark-only``."""
