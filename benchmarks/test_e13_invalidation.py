"""Bench E13: regenerate the refreshing-vs-invalidation table."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e13_invalidation


def test_e13_invalidation(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e13_invalidation.run, fast_settings)
    print("\n" + result.text)
    data = result.data
    # hdr keeps caches full; invalidation empties them toward source level
    assert data["hdr"]["slot_fresh"] > data["invalidate"]["slot_fresh"]
    # invalidation's answers are (near) never stale: its valid ratio is
    # at least as good as hdr's
    assert data["invalidate"]["valid_answers"] >= data["hdr"]["valid_answers"] - 0.05
    # hdr answers at least as many queries as invalidation
    assert data["hdr"]["answered"] >= data["invalidate"]["answered"] - 0.02
    # invalidation is cheap per message: fewer kilobytes per transmission
    kb_per_msg_inv = data["invalidate"]["kilobytes"] / data["invalidate"]["messages"]
    kb_per_msg_hdr = data["hdr"]["kilobytes"] / data["hdr"]["messages"]
    assert kb_per_msg_inv < kb_per_msg_hdr