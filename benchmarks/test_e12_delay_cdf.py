"""Bench E12: regenerate the refresh-delay CDF."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e12_delay_cdf


def test_e12_delay_cdf(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e12_delay_cdf.run, fast_settings)
    print("\n" + result.text)
    series = result.data["series"]
    # every CDF is monotone non-decreasing in x
    for scheme, cdf in series.items():
        assert all(b >= a - 1e-9 for a, b in zip(cdf, cdf[1:])), scheme
        assert all(0.0 <= v <= 1.0 for v in cdf)
    # flooding's curve dominates hdr's, which dominates source's
    for k in range(len(result.data["grid_fractions"])):
        assert series["flooding"][k] >= series["hdr"][k] - 0.03
        assert series["hdr"][k] >= series["source"][k] - 0.03
    # delivery coverage ordering
    coverage = result.data["coverage"]
    assert coverage["flooding"]["delivered"] >= coverage["source"]["delivered"]
