"""Benchmark: parallel sweep vs the serial loop, plus engine speedup.

The equality asserts are the load-bearing part -- a parallel run must
merge byte-identically to serial.  Wall-clock is measured and reported
but only *compared* when the machine actually has more than one CPU
(on a single-core host the pool can only add overhead, so asserting a
speedup there would test the container, not the code).
"""

import time

import pytest

from repro.experiments.artifacts import cache_clear
from repro.experiments.bench import available_cpus, engine_benchmark
from repro.experiments.config import Settings
from repro.experiments.runner import run_replicated

SCHEMES = ("hdr", "flooding", "random", "source")


def _identical(serial, parallel):
    assert serial.keys() == parallel.keys()
    for scheme in serial:
        assert len(serial[scheme]) == len(parallel[scheme])
        for a, b in zip(serial[scheme], parallel[scheme]):
            assert a.same_as(b)


def test_parallel_sweep_matches_serial(benchmark):
    settings = Settings.fast().with_(seeds=(1, 2, 3, 4))

    cache_clear()
    start = time.perf_counter()
    serial = run_replicated(SCHEMES, settings, jobs=1)
    serial_seconds = time.perf_counter() - start

    def parallel_sweep():
        cache_clear()
        return run_replicated(SCHEMES, settings, jobs=4)

    parallel = benchmark.pedantic(parallel_sweep, rounds=1, iterations=1)
    _identical(serial, parallel)

    parallel_seconds = benchmark.stats.stats.mean
    if available_cpus() >= 4:
        assert parallel_seconds < serial_seconds  # 16 jobs over 4 workers


def test_engine_beats_legacy_dataclass_heap(benchmark):
    """Events/sec of the tuple-heap engine vs the order=True dataclass
    reference; the optimisation claim is >=15% on this workload."""
    report = benchmark.pedantic(
        engine_benchmark, kwargs={"num_events": 50_000, "repeats": 1},
        rounds=1, iterations=1,
    )
    assert report["events_per_sec"] > 0
    assert report["improvement_pct"] >= 15.0


@pytest.mark.parametrize("jobs", [2])
def test_parallel_overhead_small_workload(benchmark, jobs):
    """Tiny workloads go through the pool correctly too (the speedup is
    not expected here -- this guards dispatch overhead and correctness)."""
    settings = Settings.fast()
    serial = run_replicated(("hdr",), settings, jobs=1)
    parallel = benchmark.pedantic(
        run_replicated, args=(("hdr",), settings),
        kwargs={"jobs": jobs}, rounds=1, iterations=1,
    )
    _identical(serial, parallel)
