"""Benchmark fixtures.

Every experiment benchmark runs the corresponding E-module at the fast
settings preset (small trace) exactly once (``rounds=1``): the benchmark
clock then measures the full table/figure regeneration, and the asserts
in each module double as shape regression checks.  For the paper-scale
tables, run the CLI instead: ``repro run all``.
"""

import pytest

from repro.experiments.config import Settings


@pytest.fixture(scope="session")
def fast_settings() -> Settings:
    return Settings.fast()


def run_experiment_once(benchmark, runner, settings):
    """Run one experiment module under the benchmark clock."""
    return benchmark.pedantic(runner, args=(settings,), rounds=1, iterations=1)
