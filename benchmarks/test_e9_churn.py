"""Bench E9: regenerate the churn-robustness table."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e9_churn


def test_e9_churn_sweep(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e9_churn.run, fast_settings)
    print("\n" + result.text)
    data = result.data
    uptimes = list(data["hdr"])  # labels, "inf" first
    # hdr under churn stays above source at every churn level
    for label in uptimes:
        assert data["hdr"][label] > data["source"][label]
    # flooding is structure-free: churn moves it by little
    flood = [data["flooding"][label] for label in uptimes]
    assert max(flood) - min(flood) < 0.15
    # hdr monotonically degrades (allowing small noise) as uptime shrinks
    hdr = [data["hdr"][label] for label in uptimes]
    assert hdr[0] >= hdr[-1] - 0.02
