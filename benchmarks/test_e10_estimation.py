"""Bench E10: regenerate the estimation-quality ablation."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e10_estimation


def test_e10_estimation_quality(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e10_estimation.run, fast_settings)
    print("\n" + result.text)
    data = result.data
    # warm-up estimates are good enough: close to the oracle
    assert abs(data["warmup"]["freshness"] - data["oracle"]["freshness"]) < 0.1
    # knowing nothing costs something
    assert data["uniform"]["freshness"] <= data["oracle"]["freshness"] + 0.02
    for name in ("oracle", "warmup", "ewma", "uniform"):
        assert 0.0 <= data[name]["on_time"] <= 1.0
