"""Bench E11: regenerate the cache-pressure table."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e11_cache_pressure


def test_e11_cache_pressure(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e11_cache_pressure.run, fast_settings)
    print("\n" + result.text)
    by_config = result.data["by_config"]
    num_items = result.data["num_items"]
    full = by_config[f"lru@{num_items}"]
    tight = by_config["lru@2"]
    # slot freshness respects the structural capacity bound
    for row in result.data["rows"]:
        assert row["slot_freshness"] <= row["cap_bound"] + 0.02
    # pressure costs freshness
    assert tight["slot_freshness"] < full["slot_freshness"]
    # but query outcomes degrade sublinearly: fresh answers fall by less
    # than the capacity ratio would suggest
    capacity_ratio = 2 / num_items
    if full["fresh_answers"] > 0:
        assert tight["fresh_answers"] > capacity_ratio * full["fresh_answers"]
