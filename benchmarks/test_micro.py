"""Micro-benchmarks of the hot substrate paths.

These use pytest-benchmark's normal repeated-measurement mode (the
functions are fast) and guard against performance regressions in the
engine, the trace generator, rate estimation and plan construction.
"""

import numpy as np
import pytest

from repro.contacts.rates import mle_rates
from repro.core.replication import plan_edge
from repro.mobility.calibration import get_profile
from repro.mobility.synthetic import PoissonContactModel, homogeneous_rate_matrix
from repro.sim.engine import Simulator


@pytest.fixture(scope="module")
def small_trace():
    return get_profile("small").generate(np.random.default_rng(1), duration=86400.0)


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1

        for k in range(10_000):
            sim.schedule_at(float(k), tick)
        sim.run()
        return counter[0]

    assert benchmark(run_10k_events) == 10_000


def test_trace_generation(benchmark):
    rates = homogeneous_rate_matrix(50, 2e-5)
    model = PoissonContactModel(rates, mean_duration=120.0)

    def generate():
        return model.generate(86400.0, np.random.default_rng(3))

    trace = benchmark(generate)
    assert len(trace) > 100


def test_rate_estimation(benchmark, small_trace):
    rates = benchmark(mle_rates, small_trace)
    assert len(rates) > 0


def test_plan_edge_with_many_candidates(benchmark):
    candidates = [(100 + k, 1e-4 * (k + 1), 2e-4) for k in range(200)]

    def plan():
        return plan_edge(0, 1, direct_rate=1e-5, relay_candidates=candidates,
                         window=3600.0, target=0.9, max_relays=8)

    plan_result = benchmark(plan)
    assert plan_result.num_relays > 0


def test_full_simulation_small(benchmark, small_trace):
    """One complete HDR run on the small trace: the end-to-end unit."""
    from repro.caching.items import DataCatalog
    from repro.core.scheme import build_simulation

    catalog = DataCatalog.uniform(
        2, sources=[small_trace.node_ids[0]], refresh_interval=4 * 3600.0
    )

    def run():
        runtime = build_simulation(small_trace, catalog, scheme="hdr",
                                   num_caching_nodes=4, seed=1)
        runtime.run(until=86400.0)
        return runtime

    runtime = benchmark.pedantic(run, rounds=3, iterations=1)
    assert runtime.refresh_overhead() > 0
