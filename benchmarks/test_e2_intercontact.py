"""Bench E2: regenerate the inter-contact CCDF figure data."""

import math

from benchmarks.conftest import run_experiment_once
from repro.experiments import e2_intercontact


def test_e2_intercontact_ccdf(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e2_intercontact.run, fast_settings)
    print("\n" + result.text)
    series = result.data["series"]
    grid = result.data["grid"]
    # empirical CCDF is monotone non-increasing and near the Exp(1) line
    for name, values in series.items():
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:])), name
    empirical = series["small"]
    reference = [math.exp(-x) for x in grid]
    assert max(abs(e - r) for e, r in zip(empirical, reference)) < 0.25
    # KS distance to the fitted exponential is small
    assert result.data["ks"]["small"] < 0.2
