"""Bench E4: regenerate freshness vs refresh interval."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e4_refresh_interval


def test_e4_refresh_interval_sweep(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e4_refresh_interval.run, fast_settings)
    print("\n" + result.text)
    series = result.data["series"]
    # freshness rises with the interval for every active scheme
    for name, values in series.items():
        assert values[-1] > values[0], name
    # hdr dominates source at every interval; flooding dominates hdr
    for k in range(len(result.data["intervals_h"])):
        assert series["flooding"][k] >= series["hdr"][k] - 0.02
        assert series["hdr"][k] > series["source"][k]
