"""Bench E6: regenerate the overhead-vs-freshness table."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e6_overhead


def test_e6_overhead_table(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e6_overhead.run, fast_settings)
    print("\n" + result.text)
    data = result.data

    def messages(name):
        return data[name]["messages"].mean

    def freshness(name):
        return data[name]["freshness"].mean

    # the paper's headline trade-off.  On the 20-node fast trace flooding's
    # population advantage is limited, so the margin is modest; at paper
    # scale (reality profile, 97 nodes) hdr costs ~1/3 of flooding.
    assert messages("flooding") > messages("hdr") > messages("source")
    assert messages("hdr") < 0.85 * messages("flooding")
    assert freshness("hdr") > freshness("source") + 0.05
    assert freshness("flooding") >= freshness("hdr") - 0.02
    assert messages("none") == 0
    # load distribution: the source does everything in source-only, but
    # only part of the work under the hierarchy
    assert data["source"]["src_share"] == 1.0
    assert data["hdr"]["src_share"] < data["flat"]["src_share"]
