"""Bench E3: regenerate the freshness-vs-time figure (all schemes)."""

import math

from benchmarks.conftest import run_experiment_once
from repro.experiments import e3_freshness_time


def mean_of(series):
    values = [v for v in series if not math.isnan(v)]
    return sum(values) / len(values)


def test_e3_freshness_over_time(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e3_freshness_time.run, fast_settings)
    print("\n" + result.text)
    series = result.data["series"]
    assert set(series) == {"hdr", "flooding", "flat", "random", "source", "none"}
    # the paper's ordering, time-averaged over the run
    assert mean_of(series["flooding"]) >= mean_of(series["hdr"]) - 0.02
    assert mean_of(series["hdr"]) > mean_of(series["source"])
    assert mean_of(series["source"]) > mean_of(series["none"])
    # no-refresh decays: its late samples are (near) zero
    late_none = [v for v in series["none"][-3:] if not math.isnan(v)]
    assert all(v < 0.05 for v in late_none)
