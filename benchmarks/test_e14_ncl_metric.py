"""Bench E14: regenerate the NCL-metric ablation."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e14_ncl_metric


def test_e14_ncl_metric(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e14_ncl_metric.run, fast_settings)
    print("\n" + result.text)
    data = result.data
    for metric in ("contact", "degree", "betweenness", "random"):
        assert 0.0 <= data[metric]["freshness"] <= 1.0
        assert 0.0 <= data[metric]["answered"] <= 1.0
    # centrality-driven selection beats (or at least matches) random
    assert data["contact"]["freshness"] >= data["random"]["freshness"] - 0.03
    assert data["contact"]["answered"] >= data["random"]["answered"] - 0.03
