"""Bench E8: regenerate the ablation tables."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e8_ablation


def test_e8_ablations(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e8_ablation.run, fast_settings)
    print("\n" + result.text)

    # A: rate-aware assignment beats random on freshness
    by_name = {row["scheme"]: row for row in result.data["assignment"]}
    assert by_name["hdr"]["freshness"] >= by_name["random"]["freshness"] - 0.02

    # C: both empirical and analytical on-time ratios rise with the budget
    budgets = sorted(result.data["relay_budget"])
    empirical = [result.data["relay_budget"][b]["empirical"] for b in budgets]
    analytical = [result.data["relay_budget"][b]["analytical"] for b in budgets]
    assert empirical[-1] > empirical[0]
    assert all(b >= a - 1e-9 for a, b in zip(analytical, analytical[1:]))

    # D: every depth variant produced sane numbers
    for row in result.data["depth"]:
        assert 0.0 <= row["freshness"] <= 1.0
        assert row["messages"] > 0
