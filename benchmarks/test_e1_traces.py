"""Bench E1: regenerate the trace-statistics table."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e1_traces


def test_e1_trace_statistics(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e1_traces.run, fast_settings)
    print("\n" + result.text)
    assert result.exp_id == "E1"
    stats = result.data["small"]
    assert stats.num_nodes <= 20
    assert stats.num_contacts > 100
    assert stats.mean_inter_contact > 0
