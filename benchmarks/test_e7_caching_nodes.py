"""Bench E7: regenerate the caching-node-count sweep."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e7_caching_nodes


def test_e7_caching_node_sweep(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e7_caching_nodes.run, fast_settings)
    print("\n" + result.text)
    freshness = result.data["freshness"]
    overhead = result.data["overhead"]
    counts = result.data["counts"]
    # hdr dominates source at every size
    for k in range(len(counts)):
        assert freshness["hdr"][k] > freshness["source"][k]
    # overhead grows with the caching set for the structured schemes
    assert overhead["hdr"][-1] > overhead["hdr"][0]
    assert overhead["source"][-1] > overhead["source"][0]
    # flooding's overhead is insensitive to the caching set (it floods anyway)
    assert abs(overhead["flooding"][-1] - overhead["flooding"][0]) < 0.2 * overhead[
        "flooding"
    ][0]
