"""Bench E5: regenerate validity vs freshness requirement."""

from benchmarks.conftest import run_experiment_once
from repro.experiments import e5_validity


def test_e5_freshness_requirement_sweep(benchmark, fast_settings):
    result = run_experiment_once(benchmark, e5_validity.run, fast_settings)
    print("\n" + result.text)
    requirements = result.data["requirements"]
    planned = result.data["planned"]
    on_time = result.data["on_time"]
    # the analytical plan quality is non-decreasing in the requirement
    assert all(b >= a - 1e-9 for a, b in zip(planned, planned[1:]))
    # hdr is provisioned, source is not: hdr's achieved ratio dominates
    for k in range(len(requirements)):
        assert on_time["hdr"][k] > on_time["source"][k]
    # flooding is the ceiling
    for k in range(len(requirements)):
        assert on_time["flooding"][k] >= on_time["hdr"][k] - 0.02
