#!/usr/bin/env python
"""Live service mode: stream a trace into a running service, query it.

Builds a :class:`~repro.service.LiveService` over the small profile's
trace, then runs three things concurrently in one asyncio loop:

1. a replay source streaming the recorded contacts into the ingest
   pipeline (planner -> cache -> results);
2. the stdlib HTTP endpoint answering item queries;
3. an open-loop Zipf load generator firing queries at a target rate.

Afterwards the service runs out to the horizon and the final score is
compared with the batch run on the same (trace, scheme, seed) -- the
replay-equivalence guarantee from docs/SERVICE.md.

Run:  python examples/live_service.py
(Set REPRO_EXAMPLE_FAST=1 for a seconds-long smoke run, as CI does.)
"""

import asyncio
import json
import os

from repro.experiments.config import DAY, Settings
from repro.service import HttpApi, ReplaySource, service_from_settings
from repro.service.loadgen import generate_load

#: CI smoke switch: shrink every example to run in seconds
FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")

DAYS = 1.0 if FAST else 3.0
RATE = 500.0 if FAST else 2000.0
DURATION = 2.0 if FAST else 10.0
SEED = 1


async def one_http_query(api: HttpApi, item_id: int) -> dict:
    reader, writer = await asyncio.open_connection(api.host, api.port)
    writer.write(
        f"GET /query?item={item_id} HTTP/1.1\r\n"
        "Host: example\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return json.loads(raw.split(b"\r\n\r\n", 1)[1])


async def main() -> None:
    settings = Settings.fast().with_(duration=DAYS * DAY, seeds=(SEED,))
    service, trace = service_from_settings(settings, seed=SEED, scheme="hdr")
    print(f"trace: {trace.num_nodes} nodes, {len(trace)} contacts, "
          f"{trace.duration / 3600:.0f} h of simulated time")

    api = HttpApi(service)  # port 0: pick a free one
    await api.start()
    print(f"service listening on {api.url}")

    # Stream the recorded trace in while the load generator queries it.
    # dilation=inf replays as fast as the pipeline drains -- the
    # replay-equivalence configuration.
    serve_task = asyncio.ensure_future(service.serve(ReplaySource(trace)))
    load = await generate_load(service, rate=RATE, duration=DURATION,
                               seed=SEED + 1000)
    await serve_task

    answer = await one_http_query(api, item_id=0)
    print(f"\nHTTP answer for item 0: hit={answer['hit']} "
          f"fresh={answer['fresh']} valid={answer['valid']} "
          f"(version {answer['version']}, node {answer['served_by']})")

    print(f"\nload: {load['achieved_qps']:,.0f} q/s achieved "
          f"(target {load['target_qps']:,.0f}), "
          f"{load['completed']} served, {load['shed']} shed")
    print(f"latency ms: p50 {load['p50_ms']:.3f}  "
          f"p95 {load['p95_ms']:.3f}  p99 {load['p99_ms']:.3f}")

    # Run the remaining simulation out to the horizon and score exactly
    # like the batch path would.
    service.finish()
    await service.stop()
    await api.stop()
    score = service.score()
    print(f"\nfinal score: freshness {score['freshness']:.4f}, "
          f"validity {score['validity']:.4f}, "
          f"messages {score['messages']:.0f}")

    # The punchline: the streamed run reproduces the batch run exactly.
    from repro.experiments.runner import run_once
    from repro.service import scores_match

    batch = run_once(trace, "hdr", settings, seed=SEED)
    print(f"identical to batch run_once: {scores_match(score, batch)}")


if __name__ == "__main__":
    asyncio.run(main())
