#!/usr/bin/env python
"""Quickstart: wire one simulation and read the headline metrics.

Builds a small synthetic contact trace, runs the paper's hierarchical
distributed refreshment scheme (HDR) next to the source-only baseline,
and prints cache freshness and overhead for both.

Run:  python examples/quickstart.py
(Set REPRO_EXAMPLE_FAST=1 for a seconds-long smoke run, as CI does.)
"""

import os

import numpy as np

from repro import DataCatalog, build_simulation, get_profile

DAY = 86400.0
#: CI smoke switch: shrink every example to run in seconds
FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")


def main() -> None:
    # 1. A contact trace: 20 devices, two communities, two days.
    rng = np.random.default_rng(7)
    trace = get_profile("small").generate(rng, duration=(0.5 if FAST else 2) * DAY)
    print(f"trace: {trace.num_nodes} nodes, {len(trace)} contacts, "
          f"{trace.duration / 3600:.0f} h")

    # 2. A catalog: four items published by one node, refreshed every 4 h.
    #    Cached copies expire after two missed refreshes.
    source = trace.node_ids[0]
    catalog = DataCatalog.uniform(
        num_items=4,
        sources=[source],
        refresh_interval=4 * 3600.0,
        freshness_requirement=0.9,
    )

    # 3. Run HDR and the source-only baseline on the same trace.
    for scheme in ("hdr", "source"):
        runtime = build_simulation(
            trace, catalog, scheme=scheme, num_caching_nodes=5, seed=1
        )
        runtime.install_freshness_probe(interval=1800.0, until=trace.duration)
        runtime.run(until=trace.duration)

        freshness = runtime.stats.series("probe.freshness").mean()
        validity = runtime.stats.series("probe.validity").mean()
        messages = runtime.refresh_overhead()
        print(f"\nscheme {scheme!r}")
        print(f"  mean cache freshness : {freshness:.3f}")
        print(f"  mean cache validity  : {validity:.3f}")
        print(f"  refresh transmissions: {messages:.0f}")
        print(f"  refresh hierarchy    : "
              f"depth {max((t.max_depth for t in runtime.trees.values()), default=0)}, "
              f"{len(runtime.caching_nodes)} caching nodes")
        if scheme == "hdr":
            print("  refresh tree (item 0), source at the root:")
            print("    " + runtime.trees[0].render().replace("\n", "\n    "))


if __name__ == "__main__":
    main()
