#!/usr/bin/env python
"""Campus news distribution -- the paper's motivating workload.

A university department publishes news items (schedules, alerts, a
podcast feed) that students' phones cache and share over Bluetooth-range
contacts, without any cellular infrastructure.  Items are refreshed at
the department's gateway device once a day and expire after two days --
exactly the "periodically refreshed, subject to expiration" data model
of the paper.

The script runs the full comparison on a Reality-calibrated campus trace
(97 devices, 2 weeks) and reports, per scheme:

- the time-averaged cache freshness and validity,
- the fraction of student queries answered with fresh data,
- the refresh transmissions spent.

Run:  python examples/campus_news.py   (takes ~1 minute)
(Set REPRO_EXAMPLE_FAST=1 for a seconds-long smoke run, as CI does.)
"""

import os

import numpy as np

from repro import DataCatalog, build_simulation, get_profile
from repro.analysis.metrics import freshness_summary, judge_queries
from repro.contacts.centrality import contact_centrality, rank_nodes
from repro.contacts.rates import mle_rates
from repro.workloads.queries import schedule_queries

DAY = 86400.0
#: CI smoke switch: small campus, two days instead of Reality-scale two weeks
FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
HORIZON = (2 if FAST else 14) * DAY
PROFILE = "small" if FAST else "reality"


def main() -> None:
    rng = np.random.default_rng(2012)
    trace = get_profile(PROFILE).generate(rng, duration=HORIZON)
    print(f"campus trace: {trace.num_nodes} devices, {len(trace)} contacts, "
          f"{trace.duration / DAY:.0f} days")

    # The department gateway is an ordinary, median-connected device.
    rates = mle_rates(trace)
    ranked = rank_nodes(contact_centrality(rates, window=6 * 3600.0))
    gateway = ranked[len(ranked) // 2]
    print(f"news gateway: node {gateway}")

    catalog = DataCatalog.uniform(
        num_items=8,
        sources=[gateway],
        refresh_interval=1 * DAY,   # daily news refresh
        lifetime=2 * DAY,           # stale after missing two editions
        size=4096,
        freshness_requirement=0.9,
    )

    header = (f"{'scheme':10s} {'freshness':>9s} {'validity':>8s} "
              f"{'fresh answers':>13s} {'messages':>8s}")
    print("\n" + header)
    print("-" * len(header))
    for scheme in ("hdr", "flooding", "flat", "source", "none"):
        runtime = build_simulation(
            trace, catalog, scheme=scheme, num_caching_nodes=12, seed=1,
            with_queries=True, refresh_jitter=0.25,
        )
        runtime.install_freshness_probe(interval=3600.0, until=HORIZON)
        schedule_queries(
            runtime,
            rate_per_node=2 / DAY,  # each student checks the news twice a day
            duration=HORIZON,
            rng=np.random.default_rng(5),
        )
        runtime.run(until=HORIZON)

        fresh = freshness_summary(runtime, t0=0.1 * HORIZON)
        queries = judge_queries(runtime.query_records(), runtime.history, catalog)
        print(f"{scheme:10s} {fresh.freshness:9.3f} {fresh.validity:8.3f} "
              f"{queries.fresh_ratio:13.3f} {runtime.refresh_overhead():8.0f}")

    print("\nReading: hdr should sit near flooding's freshness at a small "
          "fraction of its transmissions; source-only and no-refresh trail.")


if __name__ == "__main__":
    main()
