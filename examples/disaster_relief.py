#!/usr/bin/env python
"""Disaster-relief situational updates over bandwidth-limited contacts.

After an infrastructure outage, relief teams carry devices that exchange
data only when workers meet.  A coordination post publishes situational
updates (road closures, supply levels) every 2 hours; an update older
than 4 hours is dangerous to act on, so cache *validity* is the metric
that matters, and radio contacts are short -- bandwidth is limited.

This example shows two things the quickstart does not:

- a custom community mobility model built directly from the generator
  API (three field teams plus a few liaison "hub" workers), and
- the :class:`BandwidthLimitedLink` model, showing how each scheme
  degrades when contacts cannot carry unlimited copies -- structured
  schemes lose whole meeting cycles per rejected transfer, while
  flooding buys robustness with redundancy.

Run:  python examples/disaster_relief.py
(Set REPRO_EXAMPLE_FAST=1 for a seconds-long smoke run, as CI does.)
"""

import os

import numpy as np

from repro import DataCatalog, build_simulation
from repro.analysis.metrics import freshness_summary
from repro.mobility.community import CommunityModel
from repro.sim.network import BandwidthLimitedLink

HOUR = 3600.0
#: CI smoke switch: smaller teams, half a day instead of two
FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
HORIZON = (12 if FAST else 48) * HOUR


def make_field_trace(rng: np.random.Generator):
    """Three 12-person field teams; liaisons shuttle between them."""
    model = CommunityModel(
        n=12 if FAST else 36,
        num_communities=3,
        intra_rate=6e-4,       # teammates meet every ~30 min
        inter_rate=2e-5,       # cross-team encounters are rare
        rng=rng,
        mean_duration=90.0,    # short radio contacts
        hub_fraction=0.12,     # the liaison workers
        hub_multiplier=6.0,
        name="relief",
    )
    return model.generate(HORIZON, rng), model


def main() -> None:
    rng = np.random.default_rng(911)
    trace, model = make_field_trace(rng)
    print(f"field trace: {trace.num_nodes} workers, {len(trace)} contacts, "
          f"{trace.duration / HOUR:.0f} h")

    post = 0  # the coordination post's device
    catalog = DataCatalog.uniform(
        num_items=6,                # closures, supplies, casualties, ...
        sources=[post],
        refresh_interval=2 * HOUR,
        lifetime=4 * HOUR,          # acting on older data is unsafe
        size=8192,                  # maps attached
        freshness_requirement=0.95,
    )

    # At 2 kbps effective goodput, a typical 90 s contact carries ~22 KB:
    # two or three map-sized updates, not the whole catalog.
    for label, link in (
        ("unlimited links", None),
        ("2 kbps radios", BandwidthLimitedLink(bandwidth_bps=2000.0)),
    ):
        print(f"\n--- {label} ---")
        print(f"{'scheme':10s} {'freshness':>9s} {'validity':>8s} {'messages':>8s}")
        for scheme in ("hdr", "flooding", "source"):
            runtime = build_simulation(
                trace, catalog, scheme=scheme, num_caching_nodes=9, seed=1,
                link_model=link, refresh_jitter=0.25,
            )
            runtime.install_freshness_probe(interval=900.0, until=HORIZON)
            runtime.run(until=HORIZON)
            fresh = freshness_summary(runtime, t0=0.1 * HORIZON)
            print(f"{scheme:10s} {fresh.freshness:9.3f} {fresh.validity:8.3f} "
                  f"{runtime.refresh_overhead():8.0f}")

    print("\nReading: tight links hurt the structured schemes most -- every "
          "planned parent/relay transfer that does not fit costs a full "
          "meeting cycle, while flooding's redundancy hides its losses at "
          "roughly double the transmissions.  Provisioning against link "
          "budgets (not just contact rates) is future work the paper's "
          "model does not cover.")


if __name__ == "__main__":
    main()
