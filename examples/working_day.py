#!/usr/bin/env python
"""Out-of-model check: HDR on behaviourally generated mobility.

The scheme's analysis assumes exponential pairwise inter-contacts.  The
working-day model generates contacts from daily routines instead --
households, offices, meeting spots -- so nothing guarantees the
assumption holds.  This example runs the scheme comparison on such a
trace and shows the ordering survives: the rate estimators capture the
routines' *averages* well enough for the hierarchy and the relay
provisioning to work.

Run:  python examples/working_day.py
(Set REPRO_EXAMPLE_FAST=1 for a seconds-long smoke run, as CI does.)
"""

import os

import numpy as np

from repro import DataCatalog, build_simulation
from repro.analysis.metrics import freshness_summary
from repro.contacts.intercontact import (
    aggregate_intercontact_samples,
    fit_exponential,
    ks_distance,
)
from repro.mobility.workingday import WorkingDayModel

DAY = 86400.0
#: CI smoke switch: a smaller town over two days instead of ten
FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
HORIZON = (2 if FAST else 10) * DAY


def main() -> None:
    rng = np.random.default_rng(40)
    model = WorkingDayModel(
        n=16 if FAST else 40, num_offices=2 if FAST else 4, num_spots=3,
        household_size=2, meeting_prob=0.15, evening_prob=0.3, rng=rng,
    )
    trace = model.generate(HORIZON, rng)
    print(f"working-day trace: {trace.num_nodes} people, {len(trace)} "
          f"contacts, {trace.duration / DAY:.0f} days")

    samples = aggregate_intercontact_samples(trace, normalise=True,
                                             min_gaps_per_pair=3)
    distance = ks_distance(samples, fit_exponential(samples))
    print(f"exponential-fit KS distance: {distance:.3f} "
          f"(routines are NOT Poisson -- that is the point)")

    catalog = DataCatalog.uniform(
        num_items=4, sources=[0], refresh_interval=1 * DAY,
        freshness_requirement=0.9,
    )
    print(f"\n{'scheme':10s} {'freshness':>9s} {'messages':>8s}")
    for scheme in ("hdr", "flooding", "flat", "source"):
        runtime = build_simulation(
            trace, catalog, scheme=scheme, num_caching_nodes=8, seed=1,
            refresh_jitter=0.25,
        )
        runtime.install_freshness_probe(interval=3600.0, until=HORIZON)
        runtime.run(until=HORIZON)
        fresh = freshness_summary(runtime, t0=0.1 * HORIZON)
        print(f"{scheme:10s} {fresh.freshness:9.3f} "
              f"{runtime.refresh_overhead():8.0f}")

    print("\nReading: the ordering (flooding > hdr >= flat > source) holds "
          "even though inter-contacts deviate from the exponential model "
          "the provisioning assumes -- rate *rankings* survive the model "
          "mismatch, and rankings are all the greedy builder needs.")


if __name__ == "__main__":
    main()
