#!/usr/bin/env python
"""Trace analysis walkthrough: the contact-process toolbox.

Demonstrates everything below the refresh scheme: generating a
calibrated trace, writing and re-loading it in the pairwise on-disk
format (the same loader accepts real CRAWDAD dumps), estimating pairwise
contact rates, testing the exponential inter-contact hypothesis, and
ranking nodes by the centrality metric NCL selection uses.

Run:  python examples/trace_analysis.py
(Set REPRO_EXAMPLE_FAST=1 for a seconds-long smoke run, as CI does.)
"""

import os
import tempfile
from pathlib import Path

import numpy as np

from repro import get_profile, load_pairwise, mle_rates, write_pairwise
from repro.analysis.tables import format_table
from repro.contacts.centrality import contact_centrality, rank_nodes
from repro.contacts.intercontact import (
    aggregate_intercontact_samples,
    fit_exponential,
    ks_distance,
)

DAY = 86400.0
#: CI smoke switch: one day of the small profile instead of three of infocom06
FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")


def main() -> None:
    rng = np.random.default_rng(3)
    profile = "small" if FAST else "infocom06"
    trace = get_profile(profile).generate(rng, duration=(1 if FAST else 3) * DAY)

    # -- statistics table (what experiment E1 prints) ----------------------
    print(format_table([{"trace": trace.name, **trace.stats().as_row()}],
                       title="trace statistics", precision=2))

    # -- on-disk round trip ---------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "infocom06.txt"
        write_pairwise(trace, path)
        reloaded = load_pairwise(path)
        print(f"\nround trip through {path.name}: "
              f"{len(reloaded)} contacts, {reloaded.num_nodes} nodes")

    # -- exponential inter-contact hypothesis (experiment E2) -----------------
    samples = aggregate_intercontact_samples(trace, normalise=True,
                                             min_gaps_per_pair=3)
    rate = fit_exponential(samples)
    distance = ks_distance(samples, rate)
    print(f"\npair-normalised inter-contact gaps: {len(samples)} samples")
    print(f"exponential fit rate {rate:.3f} (Exp(1) expected), "
          f"KS distance {distance:.3f}")

    # -- rate estimation and centrality ranking -------------------------------
    rates = mle_rates(trace)
    scores = contact_centrality(rates, window=6 * 3600.0)
    top = rank_nodes(scores, top=8)
    rows = [
        {
            "rank": k + 1,
            "node": node,
            "score": round(scores[node], 2),
            "peers_with_contact": len(rates.neighbors(node)),
        }
        for k, node in enumerate(top)
    ]
    print()
    print(format_table(
        rows,
        title="top nodes by contact centrality (the NCL candidates)",
        precision=2,
    ))


if __name__ == "__main__":
    main()
